(** The reasoning engine: chase-based saturation of a Vadalog program.

    Evaluation strategy:
    - rules are {!Stratify}ed; strata run bottom-up;
    - within a stratum, aggregate-{e binding} rules run first, once (their
      bodies are saturated by construction), then the remaining rules reach
      a fixpoint by semi-naive evaluation (per-atom deltas over the fact
      store's insertion order);
    - existential head variables are satisfied by the Skolem chase: one
      fresh labelled null per (rule, existential variable, frontier
      binding), memoized so the chase terminates on warded programs;
    - monotone aggregate {e tests} re-evaluate while their inputs grow —
      their contributor tables persist across iterations, so recursion
      through [msum(...) > t] converges (Section 4.4's company control);
    - every derived fact can record its rule and parent facts for
      {!Provenance} explanations.

    {b Parallel evaluation.} With [~domains:N] (or a shared [~pool]),
    {!run} evaluates each stratum's plain rules across OCaml 5 domains:
    batches of snapshot-safe (rule, delta-plan) jobs run a read-only
    join phase in parallel over contiguous delta chunks, then a
    single-threaded merge replays the buffered bindings in sequential
    emission order. Chunks are sized adaptively by a per-rule cost
    model (estimated scanned facts), batches below a work threshold
    run sequentially, workers reuse join scratch from a lock-free
    {!Joinstate} bank, and for existential-free rules the workers
    precompute head facts and dedup keys so the merge's serial tail
    shrinks to classified counter bumps and pre-keyed inserts. Results
    — fact insertion order, labelled-null names, provenance, dedup and
    aggregate-contributor semantics — are byte-identical to
    [~domains:1]. Rules whose plans read their own head predicates,
    aggregate rules and zero-atom rules fall back to sequential
    evaluation. Design and correctness argument: [docs/PARALLELISM.md];
    measured behavior: [docs/PERFORMANCE.md].

    {b Thread-safety contract.} An engine is {e single-writer}: at most
    one domain at a time may call {!create}, {!add_fact},
    {!add_fact_array} or {!run}, with no concurrent readers while it
    does. (Parallel evaluation does not relax this: the engine's own
    workers only ever read the database concurrently — every write
    happens on the domain that called {!run}.) Once {!run} has returned
    and no further mutation happens, the engine is {e quiescent} and
    any number of domains may concurrently call the read side —
    {!facts}, {!explain}, {!stats}, {!profile_report},
    {!Database.lookup} on {!database}, … — including the lazily-built
    positional indexes, whose publication is made read-after-publish safe
    in {!Database} (fully-built tables swapped in atomically). Global
    telemetry ({!Vadasa_telemetry}) is {e not} domain-safe: concurrent
    engine runs must keep the gated global registry disabled and rely on
    the always-on per-engine {!profile} instead, which touches only
    engine-local state (under parallel evaluation, per-rule telemetry
    spans are skipped inside batches for the same reason — only the
    coordinator emits spans). *)

type config = {
  track_provenance : bool;  (** default [true] *)
  max_iterations : int;  (** per-stratum fixpoint guard, default 100_000 *)
  max_facts : int;  (** global derivation guard, default 10_000_000 *)
}

val default_config : config

exception Limit of string
(** Raised when an iteration or fact guard trips — the symptom of a
    non-warded program whose chase diverges. The message carries the
    current stratum, the fixpoint iteration, and the top-3
    fact-producing predicates, so a diverging program can be located
    without re-running under a debugger. *)

type interrupt = {
  reason : Vadasa_base.Budget.reason;
  stratum : int;  (** stratum being evaluated when the budget ran out *)
  iteration : int;  (** fixpoint iteration within that stratum *)
  facts_derived : int;
      (** facts derived so far — consistent with {!stats}: equals
          [(stats t).facts_derived] observed after the raise *)
}

exception Interrupted of interrupt
(** Raised by {!run} when the supplied {!Vadasa_base.Budget} is
    exhausted. Unlike {!Limit} (a program pathology), an interrupt is
    an orderly stop at an iteration boundary: the database holds every
    fact derived so far and the engine can be inspected — or even
    resumed with a fresh budget, since {!run} is idempotent. *)

type t

val create :
  ?config:config -> ?first_null_label:int -> ?strat:Stratify.t ->
  ?domains:int -> ?cap_domains:bool -> ?pool:Vadasa_base.Task_pool.t ->
  Program.t -> t
(** Loads the program's inline facts; raises [Invalid_argument] on programs
    that fail {!Program.validate} and {!Stratify.Not_stratifiable} on
    non-stratifiable ones. [first_null_label] seeds the chase's labelled-null
    counter, so successive engine runs over evolving data can keep their
    invented nulls distinct. [strat] supplies a precomputed stratification
    — it must be {!Stratify.compute} of a program with exactly the same
    rules (unchecked); callers that cache program analysis across runs
    (the server's compiled-program cache) use it to skip re-stratifying,
    since {!Program.union} with a facts-only program keeps rule ids
    stable.

    [domains] (default [1], must be ≥ 1) enables parallel evaluation:
    the engine creates — and owns — a {!Vadasa_base.Task_pool} of that
    many domains, released by {!shutdown}. [cap_domains] (default
    [true]) clamps the request to
    {!Vadasa_base.Task_pool.recommended} — the host's useful
    parallelism under cgroup/affinity limits — because oversubscribing
    OCaml 5 domains costs real time (every minor collection
    synchronizes all running domains): [~domains:4] on a one-core
    container evaluates sequentially. Pass [~cap_domains:false] to
    exercise the parallel machinery regardless (tests, scheduler
    experiments). [pool] instead {e borrows} an existing pool (it wins
    over [domains] when both are given, is never stopped by
    {!shutdown}, and is never clamped — the caller already chose its
    size); a server with its own request workers shares one engine
    pool across requests this way, keeping the process-wide domain
    count fixed. With an effective [domains = 1] and no [pool],
    evaluation is exactly the sequential engine. *)

val add_fact : t -> string -> Vadasa_base.Value.t list -> unit

val add_fact_array : t -> string -> Vadasa_base.Value.t array -> unit

val run : ?budget:Vadasa_base.Budget.t -> t -> unit
(** Saturate. Idempotent: calling [run] again after adding facts resumes
    from the current state (all strata re-run). [budget] enables
    cooperative cancellation: it is polled at every stratum entry and
    fixpoint-iteration boundary — and, under parallel evaluation,
    {e per worker} every 4096 scanned facts — raising {!Interrupted}
    when exhausted (partial results stay in the database, telemetry is
    still published; an interrupt raised inside a parallel batch
    discards that batch's not-yet-merged bindings, so the database
    holds only whole-batch prefixes). Without [budget] the only guards
    are the {!config} limits. *)

val parallelism : t -> int
(** Domains evaluation may use: the pool's size, or [1] when the engine
    is sequential. *)

val shutdown : t -> unit
(** Stop the worker pool created by [create ~domains:N]. No-op for
    sequential engines and for engines borrowing a caller-supplied
    [~pool] (the caller owns that pool's lifecycle). The engine remains
    usable afterwards — evaluation just runs on the calling domain. *)

val facts : t -> string -> Vadasa_base.Value.t array list
(** Facts of a predicate, insertion order. *)

val database : t -> Database.t

val explain :
  ?max_depth:int -> t -> string -> Vadasa_base.Value.t array ->
  Provenance.t option

val nulls_created : t -> int
(** Labelled nulls invented by the chase so far. *)

type null_origin = {
  origin_rule : int;  (** id of the rule that introduced the null *)
  origin_var : string;  (** the existential variable it satisfies *)
  origin_frontier : (string * Vadasa_base.Value.t) list;
      (** the frontier binding the Skolem chase keyed the null on;
          values may themselves be labelled nulls (nested terms) *)
}

val null_origin : t -> int -> null_origin option
(** The Skolem term a labelled null stands for — [sk(rule, var,
    frontier)] — or [None] for labels the chase did not invent (nulls
    already present in the input data). Two runs that derive the same
    facts under different label assignments (an incremental continuation
    vs. a from-scratch chase) map equal facts to equal Skolem terms;
    {!Canonical} renders databases modulo this renaming. *)

(** {2 Incremental re-evaluation}

    A saturated engine can absorb appended facts without recomputing its
    fixpoint: {!snapshot} captures each stratum's semi-naive watermarks,
    {!add_fact} loads the delta, and {!run_incremental} re-runs the
    strata with the watermarks pre-seeded, so only (old × new) and
    (new × new) joins are evaluated. The resulting database is
    {e set-identical modulo labelled-null renaming} to a from-scratch
    chase over the unioned facts (asserted via {!Canonical.of_engine}
    byte-equality in the test suite); insertion order and null labels
    differ, which is why the canonical form exists.

    Non-monotone state cannot be continued: when a predicate read under
    negation, or feeding an aggregate-{e binding} rule, has grown since
    the snapshot, {!run_incremental} raises {!Invalidated} — the
    engine's database may then hold a partial continuation and must be
    discarded in favour of a fresh from-scratch engine over the union.
    Aggregate-{e test} rules continue fine: their contributor tables
    persist inside the engine and deduplicate by contributor key. *)

module Snapshot : sig
  type t
  (** Per-stratum fixpoint state: semi-naive watermarks plus the sizes
      of invalidation-guarded predicates, captured from a saturated
      engine. Snapshots are plain immutable data — safe to retain after
      the engine is gone, but only meaningful for engines created from
      a program with the same rules and stratification. *)

  val total : t -> int
  (** [Database.total] at capture time. *)
end

exception Invalidated of string
(** A stratum's previous fixpoint no longer holds (negated or
    aggregate-binding input grew): the incremental continuation is
    abandoned mid-run. Recover by building a fresh engine over the
    unioned facts and discarding this one. *)

val snapshot : t -> Snapshot.t
(** Capture the fixpoint state of a saturated engine ({!run} returned
    normally). Cheap: a size lookup per (stratum, predicate). *)

val run_incremental :
  ?budget:Vadasa_base.Budget.t -> snapshot:Snapshot.t -> t -> Snapshot.t
(** Resume the chase over facts appended (via {!add_fact} /
    {!add_fact_array}) since [snapshot] was captured from this engine,
    and return the refreshed snapshot for the next delta. Raises
    {!Invalidated} when a non-monotone stratum cannot be continued (see
    above) and {!Interrupted} on budget exhaustion — in both cases the
    database may hold a partial continuation. [snapshot] must come from
    this engine (or one with identical program, facts and evaluation
    history); this is unchecked beyond the stratum count. *)

(** {2 Chase statistics}

    Always-on lightweight counters (plain integer bumps on the
    derivation path). When telemetry is enabled ({!Vadasa_telemetry}),
    {!run} additionally records [engine.*] spans and mirrors these
    totals into the global registry — see [docs/OBSERVABILITY.md]. *)

type stats = {
  strata_run : int;  (** stratum evaluations, cumulative over {!run}s *)
  iterations : int;  (** fixpoint iterations, cumulative *)
  facts_derived : int;  (** new facts added by rule heads *)
  duplicates_suppressed : int;  (** head emissions already in the store *)
  agg_groups_created : int;  (** aggregation groups materialized *)
  nulls_created : int;  (** labelled nulls invented by the chase *)
}

val stats : t -> stats

val rule_derivations : t -> (string * int) list
(** New facts per rule label, most productive first. *)

val pred_derivations : t -> (string * int) list
(** New facts per head predicate, most productive first. *)

(** {2 Profiling}

    Every engine carries an always-on {!Profile.t}: per-rule self time,
    evaluation counts, join selectivity (tuples scanned vs. matched),
    derivations vs. duplicate hits, nulls invented and aggregate-group
    churn, plus per-stratum wall time. The overhead is two clock reads
    per rule evaluation and plain integer bumps on the match path. *)

val profile : t -> Profile.t
(** The live accumulators (they keep counting across {!run}s). *)

val profile_report : t -> Profile.report
(** Snapshot of {!profile} as a ranked hotspot report; see
    {!Profile.to_text} and {!Profile.to_json}. *)
