(* Chase profiler: per-rule and per-stratum cost attribution.

   The accumulators are plain mutable records the engine writes to
   directly from its inner loops; this module only creates them and
   snapshots them into ranked reports. Rule evaluations never nest, so
   per-rule wall time is self time with no parent/child arithmetic. *)

module Json = Vadasa_telemetry.Telemetry.Json

let now = Unix.gettimeofday

type rule = {
  r_label : string;
  mutable r_stratum : int;
  mutable r_evals : int;
  mutable r_time : float;
  mutable r_scanned : int;
  mutable r_matched : int;
  mutable r_bindings : int;
  mutable r_derived : int;
  mutable r_duplicates : int;
  mutable r_nulls : int;
  mutable r_groups : int;
}

type stratum = { mutable s_time : float; mutable s_iterations : int }

type t = {
  mutable p_rules : rule list;  (* reverse registration order *)
  p_strata : (int, stratum) Hashtbl.t;
  mutable p_run_time : float;
}

let create () =
  { p_rules = []; p_strata = Hashtbl.create 8; p_run_time = 0.0 }

let register t ~label =
  let r =
    {
      r_label = label;
      r_stratum = -1;
      r_evals = 0;
      r_time = 0.0;
      r_scanned = 0;
      r_matched = 0;
      r_bindings = 0;
      r_derived = 0;
      r_duplicates = 0;
      r_nulls = 0;
      r_groups = 0;
    }
  in
  t.p_rules <- r :: t.p_rules;
  r

let stratum_add t index ~time ~iterations =
  let s =
    match Hashtbl.find_opt t.p_strata index with
    | Some s -> s
    | None ->
      let s = { s_time = 0.0; s_iterations = 0 } in
      Hashtbl.add t.p_strata index s;
      s
  in
  s.s_time <- s.s_time +. time;
  s.s_iterations <- s.s_iterations + iterations

let add_run_time t dt = t.p_run_time <- t.p_run_time +. dt

let rules t = List.rev t.p_rules

(* ---- reports ----------------------------------------------------------- *)

type row = {
  row_label : string;
  row_stratum : int;
  row_evals : int;
  row_time : float;
  row_share : float;
  row_scanned : int;
  row_matched : int;
  row_selectivity : float;
  row_bindings : int;
  row_derived : int;
  row_duplicates : int;
  row_emitted : int;
  row_nulls : int;
  row_groups : int;
}

type stratum_row = {
  st_index : int;
  st_time : float;
  st_iterations : int;
  st_rule_time : float;
}

type report = {
  rows : row list;
  strata : stratum_row list;
  run_time : float;
  rule_time : float;
  other_time : float;
}

let report t =
  let run_time = t.p_run_time in
  let row_of_rule r =
    {
      row_label = r.r_label;
      row_stratum = r.r_stratum;
      row_evals = r.r_evals;
      row_time = r.r_time;
      row_share = (if run_time > 0.0 then r.r_time /. run_time else 0.0);
      row_scanned = r.r_scanned;
      row_matched = r.r_matched;
      row_selectivity =
        (if r.r_scanned > 0 then
           float_of_int r.r_matched /. float_of_int r.r_scanned
         else 0.0);
      row_bindings = r.r_bindings;
      row_derived = r.r_derived;
      row_duplicates = r.r_duplicates;
      row_emitted = r.r_derived + r.r_duplicates;
      row_nulls = r.r_nulls;
      row_groups = r.r_groups;
    }
  in
  let rows =
    List.map row_of_rule (rules t)
    |> List.sort (fun a b ->
           match Float.compare b.row_time a.row_time with
           | 0 -> String.compare a.row_label b.row_label
           | c -> c)
  in
  let rule_time = List.fold_left (fun acc r -> acc +. r.row_time) 0.0 rows in
  let rule_time_in index =
    List.fold_left
      (fun acc r -> if r.row_stratum = index then acc +. r.row_time else acc)
      0.0 rows
  in
  let strata =
    Hashtbl.fold
      (fun index s acc ->
        {
          st_index = index;
          st_time = s.s_time;
          st_iterations = s.s_iterations;
          st_rule_time = rule_time_in index;
        }
        :: acc)
      t.p_strata []
    |> List.sort (fun a b -> compare a.st_index b.st_index)
  in
  {
    rows;
    strata;
    run_time;
    rule_time;
    other_time = Float.max 0.0 (run_time -. rule_time);
  }

let to_text ?top report =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "chase profile — hotspots ranked by self time\n";
  add "%-28s %5s %6s %9s %6s %9s %9s %5s %8s %7s %6s %6s\n" "rule" "strat"
    "evals" "self s" "share" "scanned" "matched" "sel%" "derived" "dupes"
    "nulls" "groups";
  let shown =
    match top with
    | Some n when n >= 0 && n < List.length report.rows ->
      List.filteri (fun i _ -> i < n) report.rows
    | _ -> report.rows
  in
  List.iter
    (fun r ->
      add "%-28s %5d %6d %9.4f %5.1f%% %9d %9d %5.1f %8d %7d %6d %6d\n"
        r.row_label r.row_stratum r.row_evals r.row_time
        (100.0 *. r.row_share) r.row_scanned r.row_matched
        (100.0 *. r.row_selectivity)
        r.row_derived r.row_duplicates r.row_nulls r.row_groups)
    shown;
  let hidden = List.length report.rows - List.length shown in
  if hidden > 0 then add "  … %d more rule(s); raise --top to see them\n" hidden;
  if report.strata <> [] then begin
    add "strata:\n";
    List.iter
      (fun s ->
        add "  stratum %-3d %9.4f s  %6d iterations  (rules %.4f s)\n"
          s.st_index s.st_time s.st_iterations s.st_rule_time)
      report.strata
  end;
  if report.run_time > 0.0 then
    add "rule self time %.4f s = %.1f%% of engine run %.4f s (other %.4f s)\n"
      report.rule_time
      (100.0 *. report.rule_time /. report.run_time)
      report.run_time report.other_time
  else add "rule self time %.4f s (no run recorded)\n" report.rule_time;
  Buffer.contents buf

let to_json report =
  let row_json r =
    Json.Obj
      [
        ("label", Json.Str r.row_label);
        ("stratum", Json.Int r.row_stratum);
        ("evals", Json.Int r.row_evals);
        ("self_s", Json.Float r.row_time);
        ("share", Json.Float r.row_share);
        ("scanned", Json.Int r.row_scanned);
        ("matched", Json.Int r.row_matched);
        ("selectivity", Json.Float r.row_selectivity);
        ("bindings", Json.Int r.row_bindings);
        ("derived", Json.Int r.row_derived);
        ("duplicates", Json.Int r.row_duplicates);
        ("emitted", Json.Int r.row_emitted);
        ("nulls", Json.Int r.row_nulls);
        ("agg_groups", Json.Int r.row_groups);
      ]
  in
  let stratum_json s =
    Json.Obj
      [
        ("index", Json.Int s.st_index);
        ("time_s", Json.Float s.st_time);
        ("iterations", Json.Int s.st_iterations);
        ("rule_time_s", Json.Float s.st_rule_time);
      ]
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("run_s", Json.Float report.run_time);
      ("rule_s", Json.Float report.rule_time);
      ("other_s", Json.Float report.other_time);
      ("rules", Json.List (List.map row_json report.rows));
      ("strata", Json.List (List.map stratum_json report.strata));
    ]
