(* Tiny substring-search helper shared by the test suites. *)

let find_sub haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then Some 0
  else if nl > hl then None
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i <= hl - nl do
      if String.equal (String.sub haystack !i nl) needle then found := Some !i
      else incr i
    done;
    !found
  end

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else if nl > hl then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= hl - nl do
      if String.equal (String.sub haystack !i nl) needle then found := true
      else incr i
    done;
    !found
  end
