(* Tests for the telemetry subsystem: counters, gauges, histograms,
   nested spans, the enabled gate, JSON round-trips of reports, and the
   engine integration (per-rule derivation counters). *)

module T = Vadasa_telemetry.Telemetry
module V = Vadasa_vadalog

(* --- counters and gauges ---------------------------------------------- *)

let test_counter () =
  let r = T.create () in
  let c = T.Counter.v ~registry:r "requests" in
  Alcotest.(check int) "starts at zero" 0 (T.Counter.value c);
  T.Counter.incr c;
  T.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (T.Counter.value c);
  let c' = T.Counter.v ~registry:r "requests" in
  Alcotest.(check int) "interned by name" 5 (T.Counter.value c');
  T.Counter.set c 2;
  Alcotest.(check int) "set is absolute" 2 (T.Counter.value c')

let test_gauge () =
  let r = T.create () in
  let g = T.Gauge.v ~registry:r "risk" in
  T.Gauge.set g 0.25;
  T.Gauge.set g 0.75;
  Alcotest.(check (float 1e-9)) "last write wins" 0.75 (T.Gauge.value g)

(* --- histograms -------------------------------------------------------- *)

let test_histogram_exact_stats () =
  let r = T.create () in
  let h = T.Histogram.v ~registry:r "delta" in
  List.iter (fun x -> T.Histogram.observe h x) [ 4.0; 1.0; 3.0; 2.0 ];
  let s = T.Histogram.summary h in
  Alcotest.(check int) "count" 4 s.T.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 10.0 s.T.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.T.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.T.Histogram.max;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.T.Histogram.mean

let test_histogram_percentiles () =
  let r = T.create () in
  let h = T.Histogram.v ~registry:r "latency" in
  (* 1..100: fits entirely in the 512-slot reservoir, so percentiles are
     exact nearest-rank values. *)
  for i = 1 to 100 do
    T.Histogram.observe h (float_of_int i)
  done;
  let s = T.Histogram.summary h in
  Alcotest.(check (float 1e-9)) "p50" 50.0 s.T.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p95" 95.0 s.T.Histogram.p95;
  Alcotest.(check (float 1e-9)) "p99" 99.0 s.T.Histogram.p99

let test_histogram_reservoir_bounds () =
  let r = T.create () in
  let h = T.Histogram.v ~registry:r "big" in
  for i = 1 to 10_000 do
    T.Histogram.observe h (float_of_int i)
  done;
  let s = T.Histogram.summary h in
  Alcotest.(check int) "exact count beyond reservoir" 10_000 s.T.Histogram.count;
  (* The sampled median of uniform 1..10_000 must land well inside the
     middle of the range. *)
  Alcotest.(check bool) "sampled p50 plausible" true
    (s.T.Histogram.p50 > 2000.0 && s.T.Histogram.p50 < 8000.0)

(* --- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  let r = T.create () in
  let result =
    T.Span.with_ ~registry:r "outer" (fun () ->
        T.Span.with_ ~registry:r "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "body result" 42 result;
  match T.Span.finished r with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner path" "outer/inner" inner.T.Span.sp_path;
    Alcotest.(check string) "outer path" "outer" outer.T.Span.sp_path;
    Alcotest.(check int) "inner depth" 1 inner.T.Span.sp_depth;
    Alcotest.(check bool) "outer contains inner" true
      (outer.T.Span.sp_duration >= inner.T.Span.sp_duration)
  | spans ->
    Alcotest.failf "expected 2 finished spans, got %d" (List.length spans)

let test_span_exception_safe () =
  let r = T.create () in
  (try
     T.Span.with_ ~registry:r "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (T.Span.finished r));
  (* The raise must also pop the stack: a later span is not nested. *)
  T.Span.with_ ~registry:r "after" (fun () -> ());
  match T.Span.finished r with
  | [ _boom; after ] ->
    Alcotest.(check string) "stack unwound" "after" after.T.Span.sp_path
  | _ -> Alcotest.fail "expected 2 finished spans"

let test_span_timed () =
  let r = T.create () in
  let x, dt = T.Span.timed ~registry:r "work" (fun () -> 7) in
  Alcotest.(check int) "result" 7 x;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0)

(* --- the global gate --------------------------------------------------- *)

let test_disabled_global_is_noop () =
  T.set_enabled false;
  T.reset T.global;
  T.count "gated.counter" 3;
  T.observe "gated.histogram" 1.0;
  T.span "gated.span" (fun () -> ());
  let report = T.Report.capture T.global in
  Alcotest.(check int) "no counters" 0 (List.length report.T.Report.counters);
  Alcotest.(check int) "no histograms" 0
    (List.length report.T.Report.histograms);
  Alcotest.(check int) "no spans" 0 (List.length report.T.Report.spans)

let test_enabled_global_records () =
  T.set_enabled true;
  T.reset T.global;
  T.count "gated.counter" 3;
  T.span "gated.span" (fun () -> ());
  T.set_enabled false;
  let report = T.Report.capture T.global in
  Alcotest.(check (list (pair string int)))
    "counter recorded"
    [ ("gated.counter", 3) ]
    report.T.Report.counters;
  Alcotest.(check int) "span recorded" 1 (List.length report.T.Report.spans);
  T.reset T.global

(* --- reports and JSON -------------------------------------------------- *)

let sample_report () =
  let r = T.create () in
  T.Counter.add (T.Counter.v ~registry:r "alpha \"quoted\"") 7;
  T.Counter.add (T.Counter.v ~registry:r "beta\nnewline") 1;
  T.Gauge.set (T.Gauge.v ~registry:r "ratio") 0.1;
  let h = T.Histogram.v ~registry:r "sizes" in
  List.iter (fun x -> T.Histogram.observe h x) [ 1.0; 2.0; 30.5 ];
  T.Span.with_ ~registry:r "run" (fun () ->
      T.Span.with_ ~registry:r "phase" (fun () -> ());
      T.Span.with_ ~registry:r "phase" (fun () -> ()));
  T.Report.capture r

let test_report_span_aggregation () =
  let report = sample_report () in
  let phase =
    List.find
      (fun a -> String.equal a.T.Report.agg_path "run/phase")
      report.T.Report.spans
  in
  Alcotest.(check int) "two phase spans aggregated" 2 phase.T.Report.agg_count;
  Alcotest.(check bool) "max <= total" true
    (phase.T.Report.agg_max <= phase.T.Report.agg_total)

let test_report_json_roundtrip () =
  let report = sample_report () in
  let json = T.Report.to_json report in
  let rendered = T.Json.to_string ~indent:true json in
  match T.Json.of_string rendered with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed -> (
    match T.Report.of_json parsed with
    | Error e -> Alcotest.failf "of_json failed: %s" e
    | Ok report' ->
      Alcotest.(check bool) "round-trip preserves report" true
        (T.Report.equal report report'))

let test_json_escapes () =
  let tricky = "quote \" backslash \\ newline \n tab \t unicode \xc3\xa9" in
  let json = T.Json.Obj [ ("k", T.Json.Str tricky) ] in
  match T.Json.of_string (T.Json.to_string json) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    let got =
      Option.bind (T.Json.member "k" parsed) T.Json.to_string_opt
    in
    Alcotest.(check (option string)) "string survives" (Some tricky) got

(* --- engine integration ------------------------------------------------ *)

let ancestry_src =
  {|
@label("base").
ancestor(X, Y) :- parent(X, Y).
@label("step").
ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
parent(a, b). parent(b, c). parent(c, d).
@output("ancestor").
|}

let test_engine_rule_counters () =
  T.set_enabled true;
  T.reset T.global;
  let engine = V.Engine.create (V.Parser.parse ancestry_src) in
  V.Engine.run engine;
  T.set_enabled false;
  let stats = V.Engine.stats engine in
  Alcotest.(check bool) "facts derived" true (stats.V.Engine.facts_derived > 0);
  let derivations = V.Engine.rule_derivations engine in
  List.iter
    (fun label ->
      match List.assoc_opt label derivations with
      | Some n -> Alcotest.(check bool) (label ^ " derived facts") true (n > 0)
      | None -> Alcotest.failf "no derivation count for rule %S" label)
    [ "base"; "step" ];
  (* The published global counters must agree with the engine's stats. *)
  let report = T.Report.capture T.global in
  Alcotest.(check (option int))
    "engine.facts.derived counter"
    (Some stats.V.Engine.facts_derived)
    (List.assoc_opt "engine.facts.derived" report.T.Report.counters);
  Alcotest.(check bool) "per-rule counter present" true
    (List.mem_assoc "engine.rule.step.derived" report.T.Report.counters);
  Alcotest.(check bool) "engine.run span present" true
    (List.exists
       (fun a -> String.equal a.T.Report.agg_path "engine.run")
       report.T.Report.spans);
  T.reset T.global

let () =
  Alcotest.run "telemetry"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram exact stats" `Quick
            test_histogram_exact_stats;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "histogram reservoir bounds" `Quick
            test_histogram_reservoir_bounds;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting paths" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "timed" `Quick test_span_timed;
        ] );
      ( "gate",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_global_is_noop;
          Alcotest.test_case "enabled records" `Quick
            test_enabled_global_records;
        ] );
      ( "report",
        [
          Alcotest.test_case "span aggregation" `Quick
            test_report_span_aggregation;
          Alcotest.test_case "json round-trip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "json escapes" `Quick test_json_escapes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "per-rule derivation counters" `Quick
            test_engine_rule_counters;
        ] );
    ]
