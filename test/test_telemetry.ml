(* Tests for the telemetry subsystem: counters, gauges, histograms,
   nested spans, the enabled gate, JSON round-trips of reports, and the
   engine integration (per-rule derivation counters). *)

module T = Vadasa_telemetry.Telemetry
module V = Vadasa_vadalog

(* --- counters and gauges ---------------------------------------------- *)

let test_counter () =
  let r = T.create () in
  let c = T.Counter.v ~registry:r "requests" in
  Alcotest.(check int) "starts at zero" 0 (T.Counter.value c);
  T.Counter.incr c;
  T.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (T.Counter.value c);
  let c' = T.Counter.v ~registry:r "requests" in
  Alcotest.(check int) "interned by name" 5 (T.Counter.value c');
  T.Counter.set c 2;
  Alcotest.(check int) "set is absolute" 2 (T.Counter.value c')

let test_gauge () =
  let r = T.create () in
  let g = T.Gauge.v ~registry:r "risk" in
  T.Gauge.set g 0.25;
  T.Gauge.set g 0.75;
  Alcotest.(check (float 1e-9)) "last write wins" 0.75 (T.Gauge.value g)

(* --- histograms -------------------------------------------------------- *)

let test_histogram_exact_stats () =
  let r = T.create () in
  let h = T.Histogram.v ~registry:r "delta" in
  List.iter (fun x -> T.Histogram.observe h x) [ 4.0; 1.0; 3.0; 2.0 ];
  let s = T.Histogram.summary h in
  Alcotest.(check int) "count" 4 s.T.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 10.0 s.T.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.T.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.T.Histogram.max;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.T.Histogram.mean

let test_histogram_percentiles () =
  let r = T.create () in
  let h = T.Histogram.v ~registry:r "latency" in
  (* 1..100: fits entirely in the 512-slot reservoir, so percentiles are
     exact nearest-rank values. *)
  for i = 1 to 100 do
    T.Histogram.observe h (float_of_int i)
  done;
  let s = T.Histogram.summary h in
  Alcotest.(check (float 1e-9)) "p50" 50.0 s.T.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p95" 95.0 s.T.Histogram.p95;
  Alcotest.(check (float 1e-9)) "p99" 99.0 s.T.Histogram.p99

let test_histogram_reservoir_bounds () =
  let r = T.create () in
  let h = T.Histogram.v ~registry:r "big" in
  for i = 1 to 10_000 do
    T.Histogram.observe h (float_of_int i)
  done;
  let s = T.Histogram.summary h in
  Alcotest.(check int) "exact count beyond reservoir" 10_000 s.T.Histogram.count;
  (* The sampled median of uniform 1..10_000 must land well inside the
     middle of the range. *)
  Alcotest.(check bool) "sampled p50 plausible" true
    (s.T.Histogram.p50 > 2000.0 && s.T.Histogram.p50 < 8000.0)

(* --- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  let r = T.create () in
  let result =
    T.Span.with_ ~registry:r "outer" (fun () ->
        T.Span.with_ ~registry:r "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "body result" 42 result;
  match T.Span.finished r with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner path" "outer/inner" inner.T.Span.sp_path;
    Alcotest.(check string) "outer path" "outer" outer.T.Span.sp_path;
    Alcotest.(check int) "inner depth" 1 inner.T.Span.sp_depth;
    Alcotest.(check bool) "outer contains inner" true
      (outer.T.Span.sp_duration >= inner.T.Span.sp_duration)
  | spans ->
    Alcotest.failf "expected 2 finished spans, got %d" (List.length spans)

let test_span_exception_safe () =
  let r = T.create () in
  (try
     T.Span.with_ ~registry:r "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (T.Span.finished r));
  (* The raise must also pop the stack: a later span is not nested. *)
  T.Span.with_ ~registry:r "after" (fun () -> ());
  match T.Span.finished r with
  | [ _boom; after ] ->
    Alcotest.(check string) "stack unwound" "after" after.T.Span.sp_path
  | _ -> Alcotest.fail "expected 2 finished spans"

let test_span_timed () =
  let r = T.create () in
  let x, dt = T.Span.timed ~registry:r "work" (fun () -> 7) in
  Alcotest.(check int) "result" 7 x;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0)

(* --- the global gate --------------------------------------------------- *)

let test_disabled_global_is_noop () =
  T.set_enabled false;
  T.reset T.global;
  T.count "gated.counter" 3;
  T.observe "gated.histogram" 1.0;
  T.span "gated.span" (fun () -> ());
  let report = T.Report.capture T.global in
  Alcotest.(check int) "no counters" 0 (List.length report.T.Report.counters);
  Alcotest.(check int) "no histograms" 0
    (List.length report.T.Report.histograms);
  Alcotest.(check int) "no spans" 0 (List.length report.T.Report.spans)

let test_enabled_global_records () =
  T.set_enabled true;
  T.reset T.global;
  T.count "gated.counter" 3;
  T.span "gated.span" (fun () -> ());
  T.set_enabled false;
  let report = T.Report.capture T.global in
  Alcotest.(check (list (pair string int)))
    "counter recorded"
    [ ("gated.counter", 3) ]
    report.T.Report.counters;
  Alcotest.(check int) "span recorded" 1 (List.length report.T.Report.spans);
  T.reset T.global

(* --- reports and JSON -------------------------------------------------- *)

let sample_report () =
  let r = T.create () in
  T.Counter.add (T.Counter.v ~registry:r "alpha \"quoted\"") 7;
  T.Counter.add (T.Counter.v ~registry:r "beta\nnewline") 1;
  T.Gauge.set (T.Gauge.v ~registry:r "ratio") 0.1;
  let h = T.Histogram.v ~registry:r "sizes" in
  List.iter (fun x -> T.Histogram.observe h x) [ 1.0; 2.0; 30.5 ];
  T.Span.with_ ~registry:r "run" (fun () ->
      T.Span.with_ ~registry:r "phase" (fun () -> ());
      T.Span.with_ ~registry:r "phase" (fun () -> ()));
  T.Report.capture r

let test_report_span_aggregation () =
  let report = sample_report () in
  let phase =
    List.find
      (fun a -> String.equal a.T.Report.agg_path "run/phase")
      report.T.Report.spans
  in
  Alcotest.(check int) "two phase spans aggregated" 2 phase.T.Report.agg_count;
  Alcotest.(check bool) "max <= total" true
    (phase.T.Report.agg_max <= phase.T.Report.agg_total)

let test_report_json_roundtrip () =
  let report = sample_report () in
  let json = T.Report.to_json report in
  let rendered = T.Json.to_string ~indent:true json in
  match T.Json.of_string rendered with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed -> (
    match T.Report.of_json parsed with
    | Error e -> Alcotest.failf "of_json failed: %s" e
    | Ok report' ->
      Alcotest.(check bool) "round-trip preserves report" true
        (T.Report.equal report report'))

let test_json_escapes () =
  let tricky = "quote \" backslash \\ newline \n tab \t unicode \xc3\xa9" in
  let json = T.Json.Obj [ ("k", T.Json.Str tricky) ] in
  match T.Json.of_string (T.Json.to_string json) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    let got =
      Option.bind (T.Json.member "k" parsed) T.Json.to_string_opt
    in
    Alcotest.(check (option string)) "string survives" (Some tricky) got

(* --- trace exporters ---------------------------------------------------- *)

(* A registry with a known span shape: root > child > leaf, plus a
   sibling child2 under root. *)
let trace_registry () =
  let r = T.create () in
  T.Span.with_ ~registry:r "root" (fun () ->
      T.Span.with_ ~registry:r "child" (fun () ->
          T.Span.with_ ~registry:r "leaf" (fun () -> ()));
      T.Span.with_ ~registry:r "child2" (fun () -> ()));
  r

let test_trace_chrome_parses_and_nests () =
  let r = trace_registry () in
  let rendered = T.Json.to_string ~indent:true (T.trace_chrome r) in
  match T.Json.of_string rendered with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok json ->
    let events =
      match Option.bind (T.Json.member "traceEvents" json) T.Json.to_list_opt with
      | Some l -> l
      | None -> Alcotest.fail "no traceEvents list"
    in
    Alcotest.(check int) "one event per finished span" 4 (List.length events);
    let field name ev =
      match T.Json.member name ev with
      | Some v -> v
      | None -> Alcotest.failf "event missing %s" name
    in
    let num ev name =
      match T.Json.to_float_opt (field name ev) with
      | Some f -> f
      | None -> Alcotest.failf "%s is not numeric" name
    in
    let path ev =
      match
        Option.bind (T.Json.member "args" ev) (fun a ->
            Option.bind (T.Json.member "path" a) T.Json.to_string_opt)
      with
      | Some p -> p
      | None -> Alcotest.fail "event missing args.path"
    in
    List.iter
      (fun ev ->
        Alcotest.(check (option string))
          "complete event" (Some "X")
          (T.Json.to_string_opt (field "ph" ev)))
      events;
    (* Every child interval must nest inside its parent's interval
       (small slack: ts/dur round through microseconds). *)
    let by_path = List.map (fun ev -> (path ev, ev)) events in
    List.iter
      (fun (p, ev) ->
        match String.rindex_opt p '/' with
        | None -> ()
        | Some i -> (
          let parent_path = String.sub p 0 i in
          match List.assoc_opt parent_path by_path with
          | None -> Alcotest.failf "no parent event for %s" p
          | Some parent ->
            let slack = 2.0 (* µs *) in
            let ts = num ev "ts" and dur = num ev "dur" in
            let pts = num parent "ts" and pdur = num parent "dur" in
            Alcotest.(check bool)
              (p ^ " starts after parent") true
              (ts +. slack >= pts);
            Alcotest.(check bool)
              (p ^ " ends before parent") true
              (ts +. dur <= pts +. pdur +. slack)))
      by_path

let test_trace_folded_roundtrip () =
  let r = trace_registry () in
  let folded = T.trace_folded r in
  let lines =
    String.split_on_char '\n' folded |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per distinct path" 4 (List.length lines);
  (* Each line is "a;b;c <int>"; the stack must be a finished span path
     with '/' replaced by ';', and ancestry must be reconstructible: every
     stack's prefix is itself a stack in the output. *)
  let stacks =
    List.map
      (fun line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed folded line %S" line
        | Some i ->
          let stack = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (match int_of_string_opt v with
          | Some n when n >= 0 -> ()
          | _ -> Alcotest.failf "bad self-time value in %S" line);
          stack)
      lines
  in
  let span_paths =
    List.map
      (fun i ->
        String.concat ";" (String.split_on_char '/' i.T.Span.sp_path))
      (T.Span.finished r)
  in
  List.iter
    (fun stack ->
      Alcotest.(check bool)
        (stack ^ " is a span path") true
        (List.mem stack span_paths);
      match String.rindex_opt stack ';' with
      | None -> ()
      | Some i ->
        let prefix = String.sub stack 0 i in
        Alcotest.(check bool)
          (prefix ^ " ancestor present") true
          (List.mem prefix stacks))
    stacks

let report_of_spans spans =
  (* Build a report with chosen span totals by round-tripping JSON. *)
  let json =
    T.Json.Obj
      [
        ("version", T.Json.Int 1);
        ("counters", T.Json.Obj []);
        ("gauges", T.Json.Obj []);
        ("histograms", T.Json.Obj []);
        ( "spans",
          T.Json.List
            (List.map
               (fun (path, total) ->
                 T.Json.Obj
                   [
                     ("path", T.Json.Str path);
                     ("count", T.Json.Int 1);
                     ("total_s", T.Json.Float total);
                     ("max_s", T.Json.Float total);
                   ])
               spans) );
        ("dropped_spans", T.Json.Int 0);
      ]
  in
  match T.Report.of_json json with
  | Ok r -> r
  | Error e -> Alcotest.failf "report_of_spans: %s" e

let test_report_text_sorted_with_self () =
  let report =
    report_of_spans [ ("a", 1.0); ("b", 2.0); ("a/c", 0.25) ]
  in
  let self = T.Report.self_times report in
  Alcotest.(check (option (float 1e-9)))
    "self of a excludes child" (Some 0.75) (List.assoc_opt "a" self);
  Alcotest.(check (option (float 1e-9)))
    "leaf self = total" (Some 2.0) (List.assoc_opt "b" self);
  let text = T.Report.to_text report in
  let index needle =
    let rec find i =
      if i + String.length needle > String.length text then
        Alcotest.failf "%S not in report text" needle
      else if String.sub text i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "slowest span printed first" true
    (index "  b " < index "  a ")

let test_report_regressions () =
  let baseline = report_of_spans [ ("a", 1.0); ("b", 2.0); ("gone", 1.0) ] in
  let current = report_of_spans [ ("a", 1.5); ("b", 2.1); ("new", 9.0) ] in
  let deltas = T.Report.diff_spans ~baseline ~current in
  Alcotest.(check int) "only common paths diffed" 2 (List.length deltas);
  let regs = T.Report.regressions ~baseline ~current () in
  (match regs with
  | [ d ] ->
    Alcotest.(check string) "a regressed" "a" d.T.Report.d_path;
    Alcotest.(check (float 1e-9)) "baseline total" 1.0 d.T.Report.d_baseline;
    Alcotest.(check (float 1e-9)) "current total" 1.5 d.T.Report.d_current
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  Alcotest.(check int) "looser threshold clears it" 0
    (List.length (T.Report.regressions ~threshold:0.6 ~baseline ~current ()))

let test_span_limit_and_dropped () =
  let r = T.create ~span_limit:2 () in
  for _ = 1 to 5 do
    T.Span.with_ ~registry:r "s" (fun () -> ())
  done;
  Alcotest.(check int) "retained bounded" 2 (List.length (T.Span.finished r));
  Alcotest.(check int) "overflow counted" 3 (T.Span.dropped r);
  let report = T.Report.capture r in
  Alcotest.(check int) "dropped in report" 3 report.T.Report.dropped_spans;
  T.set_span_limit r 4;
  Alcotest.(check int) "limit readable" 4 (T.span_limit r);
  T.Span.with_ ~registry:r "t" (fun () -> ());
  T.Span.with_ ~registry:r "t" (fun () -> ());
  T.Span.with_ ~registry:r "t" (fun () -> ());
  Alcotest.(check int) "raised limit retains more" 4
    (List.length (T.Span.finished r));
  Alcotest.(check int) "previous drops not forgotten" 4 (T.Span.dropped r)

(* --- domain safety ------------------------------------------------------ *)

(* N domains hammer one registry: counters must lose no increments,
   merged histograms must stay exact on count/sum and well-formed on
   buckets, and span aggregation must see every completion. *)
let test_domain_hammer () =
  let r = T.create () in
  let domains = 4 and per = 10_000 in
  let work () =
    let c = T.Counter.v ~registry:r "hammer.count" in
    let h = T.Histogram.v ~registry:r "hammer.obs" in
    for i = 1 to per do
      T.Counter.incr c;
      T.Histogram.observe h (float_of_int (i mod 100));
      if i mod 1000 = 0 then
        T.Span.with_ ~registry:r "hammer.span" (fun () -> ())
    done
  in
  let workers = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join workers;
  let report = T.Report.capture r in
  Alcotest.(check (option int))
    "zero lost counter increments"
    (Some (domains * per))
    (List.assoc_opt "hammer.count" report.T.Report.counters);
  let s =
    match List.assoc_opt "hammer.obs" report.T.Report.histograms with
    | Some s -> s
    | None -> Alcotest.fail "merged histogram missing"
  in
  Alcotest.(check int) "zero lost observations" (domains * per)
    s.T.Histogram.count;
  (* sum of (i mod 100) over 1..10_000 per domain: 100 full cycles of
     0+..+99 = 100 * 4950 *)
  Alcotest.(check (float 1e-6))
    "merged sum exact"
    (float_of_int (domains * 100 * 4950))
    s.T.Histogram.sum;
  Alcotest.(check (float 1e-9)) "merged min" 0.0 s.T.Histogram.min;
  Alcotest.(check (float 1e-9)) "merged max" 99.0 s.T.Histogram.max;
  (* buckets: cumulative, monotone, bounded by the exact count *)
  let last = ref 0 in
  List.iter
    (fun (le, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket le=%g monotone" le)
        true (n >= !last);
      last := n;
      Alcotest.(check bool)
        (Printf.sprintf "bucket le=%g bounded" le)
        true
        (n <= s.T.Histogram.count))
    s.T.Histogram.buckets;
  (* every observation is <= 99 < 100, so the le=100 bucket holds all *)
  Alcotest.(check (option int))
    "top bucket holds everything"
    (Some (domains * per))
    (List.assoc_opt 100.0 s.T.Histogram.buckets);
  (match
     List.find_opt
       (fun a -> String.equal a.T.Report.agg_path "hammer.span")
       report.T.Report.spans
   with
  | Some agg ->
    Alcotest.(check int) "all spans aggregated" (domains * (per / 1000))
      agg.T.Report.agg_count
  | None -> Alcotest.fail "hammer.span missing from report");
  Alcotest.(check int) "nothing dropped" 0 report.T.Report.dropped_spans

(* Concurrent recording against a small span limit: the retained count
   must hit the limit exactly and the dropped count must account for
   every other completion — per-shard counts summed at capture. *)
let test_span_limit_concurrent () =
  let r = T.create ~span_limit:50 () in
  let domains = 4 and per = 1_000 in
  let work () =
    for _ = 1 to per do
      T.Span.with_ ~registry:r "s" (fun () -> ())
    done
  in
  let workers = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join workers;
  Alcotest.(check int) "retained exactly at limit" 50
    (List.length (T.Span.finished r));
  Alcotest.(check int) "dropped accounts for the rest"
    ((domains * per) - 50)
    (T.Span.dropped r);
  let report = T.Report.capture r in
  Alcotest.(check int) "report agrees"
    ((domains * per) - 50)
    report.T.Report.dropped_spans

(* [with_local_trace] returns only the calling domain's spans, oldest
   first, even while another domain records into the same registry. *)
let test_with_local_trace () =
  let r = T.create () in
  let stop = Atomic.make false in
  let noisy =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          T.Span.with_ ~registry:r "other" (fun () -> Domain.cpu_relax ())
        done)
  in
  let result, events =
    T.with_local_trace ~registry:r (fun () ->
        T.Span.with_ ~registry:r "mine" (fun () ->
            T.Span.with_ ~registry:r "nested" (fun () -> ()));
        42)
  in
  Atomic.set stop true;
  Domain.join noisy;
  Alcotest.(check int) "result threads through" 42 result;
  Alcotest.(check (list string))
    "local spans only, oldest first"
    [ "mine/nested"; "mine" ]
    (List.map (fun e -> e.T.Span.sp_path) events)

(* The local trace collector is independent of the retention limit: a
   registry whose span budget is exhausted still yields complete traces
   (the server's [--trace-sample] must not die in a long run), while
   the registry itself retains nothing and counts every drop. *)
let test_local_trace_survives_span_limit () =
  let r = T.create ~span_limit:0 () in
  let result, events =
    T.with_local_trace ~registry:r (fun () ->
        T.Span.with_ ~registry:r "root" (fun () ->
            T.Span.with_ ~registry:r "child" (fun () -> ()));
        7)
  in
  Alcotest.(check int) "result threads through" 7 result;
  Alcotest.(check (list string))
    "trace complete despite exhausted retention"
    [ "root/child"; "root" ]
    (List.map (fun e -> e.T.Span.sp_path) events);
  Alcotest.(check int) "registry retained nothing" 0
    (List.length (T.Span.finished r));
  Alcotest.(check int) "drops still accounted" 2 (T.Span.dropped r)

(* --- Prometheus exposition ---------------------------------------------- *)

let test_prometheus_name () =
  Alcotest.(check string)
    "dots and spaces" "engine_facts_derived"
    (T.prometheus_name "engine.facts.derived");
  Alcotest.(check string)
    "slash and leading digit" "_fast_path"
    (T.prometheus_name "2fast/path");
  Alcotest.(check string) "empty" "_" (T.prometheus_name "")

(* A deterministic registry rendered against the checked-in golden
   exposition: counters get _total, histograms render the full bucket
   ladder + +Inf/_sum/_count, names sanitize into the Prometheus
   charset. Regenerate with:
     PROMETHEUS_GOLDEN_WRITE=test/golden_prometheus.txt \
       dune exec test/test_telemetry.exe -- test prometheus *)
let golden_registry () =
  let r = T.create () in
  T.Counter.add (T.Counter.v ~registry:r "engine.facts.derived") 42;
  T.Gauge.set (T.Gauge.v ~registry:r "sdc.risk.global") 0.25;
  let h = T.Histogram.v ~registry:r "http.latency.GET healthz" in
  List.iter (fun x -> T.Histogram.observe h x) [ 0.002; 0.004; 0.3; 77_000.0 ];
  r

let test_prometheus_golden () =
  let rendered =
    T.Prometheus.render (T.Report.capture (golden_registry ()))
  in
  (match Sys.getenv_opt "PROMETHEUS_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out path in
    output_string oc rendered;
    close_out oc
  | None -> ());
  let golden =
    (* dune runtest runs in _build/default/test; dune exec from the root *)
    let path =
      if Sys.file_exists "golden_prometheus.txt" then "golden_prometheus.txt"
      else Filename.concat "test" "golden_prometheus.txt"
    in
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if not (String.equal rendered golden) then
    Alcotest.failf "exposition drifted from golden file:\n%s" rendered

let test_prometheus_no_duplicate_series () =
  (* Two names that sanitize to the same family must not render twice. *)
  let r = T.create () in
  T.Counter.add (T.Counter.v ~registry:r "a.b") 1;
  T.Counter.add (T.Counter.v ~registry:r "a b") 2;
  let rendered = T.Prometheus.render (T.Report.capture r) in
  let occurrences =
    String.split_on_char '\n' rendered
    |> List.filter (fun l -> l = "vadasa_a_b_total 1" || l = "vadasa_a_b_total 2")
  in
  Alcotest.(check int) "one sample for the colliding family" 1
    (List.length occurrences)

(* --- engine integration ------------------------------------------------ *)

let ancestry_src =
  {|
@label("base").
ancestor(X, Y) :- parent(X, Y).
@label("step").
ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
parent(a, b). parent(b, c). parent(c, d).
@output("ancestor").
|}

let test_engine_rule_counters () =
  T.set_enabled true;
  T.reset T.global;
  let engine = V.Engine.create (V.Parser.parse ancestry_src) in
  V.Engine.run engine;
  T.set_enabled false;
  let stats = V.Engine.stats engine in
  Alcotest.(check bool) "facts derived" true (stats.V.Engine.facts_derived > 0);
  let derivations = V.Engine.rule_derivations engine in
  List.iter
    (fun label ->
      match List.assoc_opt label derivations with
      | Some n -> Alcotest.(check bool) (label ^ " derived facts") true (n > 0)
      | None -> Alcotest.failf "no derivation count for rule %S" label)
    [ "base"; "step" ];
  (* The published global counters must agree with the engine's stats. *)
  let report = T.Report.capture T.global in
  Alcotest.(check (option int))
    "engine.facts.derived counter"
    (Some stats.V.Engine.facts_derived)
    (List.assoc_opt "engine.facts.derived" report.T.Report.counters);
  Alcotest.(check bool) "per-rule counter present" true
    (List.mem_assoc "engine.rule.step.derived" report.T.Report.counters);
  Alcotest.(check bool) "engine.run span present" true
    (List.exists
       (fun a -> String.equal a.T.Report.agg_path "engine.run")
       report.T.Report.spans);
  T.reset T.global

let () =
  Alcotest.run "telemetry"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram exact stats" `Quick
            test_histogram_exact_stats;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "histogram reservoir bounds" `Quick
            test_histogram_reservoir_bounds;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting paths" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "timed" `Quick test_span_timed;
        ] );
      ( "gate",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_global_is_noop;
          Alcotest.test_case "enabled records" `Quick
            test_enabled_global_records;
        ] );
      ( "report",
        [
          Alcotest.test_case "span aggregation" `Quick
            test_report_span_aggregation;
          Alcotest.test_case "json round-trip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "json escapes" `Quick test_json_escapes;
          Alcotest.test_case "text sorted with self column" `Quick
            test_report_text_sorted_with_self;
          Alcotest.test_case "diff_spans and regressions" `Quick
            test_report_regressions;
        ] );
      ( "traces",
        [
          Alcotest.test_case "chrome trace parses and nests" `Quick
            test_trace_chrome_parses_and_nests;
          Alcotest.test_case "folded stacks round-trip" `Quick
            test_trace_folded_roundtrip;
          Alcotest.test_case "span limit and dropped" `Quick
            test_span_limit_and_dropped;
        ] );
      ( "domains",
        [
          Alcotest.test_case "N-domain hammer" `Quick test_domain_hammer;
          Alcotest.test_case "span limit exact under concurrency" `Quick
            test_span_limit_concurrent;
          Alcotest.test_case "with_local_trace" `Quick test_with_local_trace;
          Alcotest.test_case "local trace survives span limit" `Quick
            test_local_trace_survives_span_limit;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "name sanitation" `Quick test_prometheus_name;
          Alcotest.test_case "golden exposition" `Quick test_prometheus_golden;
          Alcotest.test_case "sanitize collisions dedup" `Quick
            test_prometheus_no_duplicate_series;
        ] );
      ( "engine",
        [
          Alcotest.test_case "per-rule derivation counters" `Quick
            test_engine_rule_counters;
        ] );
    ]
