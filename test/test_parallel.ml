(* Parallel chase tests: the [Task_pool] scheduler, the byte-identity
   guarantee of multi-domain evaluation (domains 1/2/4 must produce the
   same database, the same insertion order, the same profiler counters),
   the reasoned risk path across domain counts, and fault injection into
   parallel chunk tasks (typed errors, never crashes, and a database
   untouched by the failed batch). *)

module Task_pool = Vadasa_base.Task_pool
module Value = Vadasa_base.Value
module E = Vadasa_base.Error
module Budget = Vadasa_base.Budget
module Faultpoint = Vadasa_resilience.Faultpoint
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

(* --- task pool ------------------------------------------------------------ *)

let test_pool_create_invalid () =
  match Task_pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains < 1 accepted"
  | exception Invalid_argument _ -> ()

let test_pool_ordered_results () =
  let pool = Task_pool.create ~name:"test" ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Task_pool.stop pool)
    (fun () ->
      Alcotest.(check int) "domains" 4 (Task_pool.domains pool);
      let tasks = Array.init 100 (fun i () -> i * i) in
      let results = Task_pool.run_all pool tasks in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "slot order" (i * i) v
          | Error _ -> Alcotest.fail "unexpected task failure")
        results)

let test_pool_exception_capture () =
  let pool = Task_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Task_pool.stop pool)
    (fun () ->
      let tasks =
        Array.init 20 (fun i () ->
            if i = 7 || i = 13 then failwith (string_of_int i) else i)
      in
      let results = Task_pool.run_all pool tasks in
      Array.iteri
        (fun i r ->
          match (i, r) with
          | (7 | 13), Error (Failure m) ->
            Alcotest.(check string) "failure slot" (string_of_int i) m
          | (7 | 13), _ -> Alcotest.fail "expected captured exception"
          | _, Ok v -> Alcotest.(check int) "ok slot" i v
          | _, Error _ -> Alcotest.fail "unexpected failure slot")
        results)

let test_pool_concurrent_submitters () =
  (* One shared pool, several domains submitting batches at once — the
     server's composition shape ([serve --engine-domains]). *)
  let pool = Task_pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Task_pool.stop pool)
    (fun () ->
      let submit seed () =
        let tasks = Array.init 50 (fun i () -> seed + i) in
        Task_pool.run_all pool tasks
      in
      let d1 = Domain.spawn (submit 1_000) in
      let d2 = Domain.spawn (submit 2_000) in
      let local = submit 3_000 () in
      let check seed results =
        Array.iteri
          (fun i r ->
            match r with
            | Ok v -> Alcotest.(check int) "value" (seed + i) v
            | Error _ -> Alcotest.fail "submitter batch failed")
          results
      in
      check 1_000 (Domain.join d1);
      check 2_000 (Domain.join d2);
      check 3_000 local)

let test_pool_stop_idempotent () =
  let pool = Task_pool.create ~domains:2 () in
  Alcotest.(check bool) "running" false (Task_pool.stopped pool);
  Task_pool.stop pool;
  Task_pool.stop pool;
  Alcotest.(check bool) "stopped" true (Task_pool.stopped pool);
  (* A stopped pool still runs batches — sequentially, on the caller. *)
  let results = Task_pool.run_all pool (Array.init 5 (fun i () -> i + 1)) in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "sequential fallback" (i + 1) v
      | Error _ -> Alcotest.fail "sequential fallback failed")
    results

(* --- byte-identity across domain counts ----------------------------------- *)

(* Canonical rendering of everything observable about a finished chase:
   every predicate's facts in insertion order. Two runs are considered
   byte-identical iff these strings are equal. *)
let dump_database db =
  let buf = Buffer.create 4096 in
  List.iter
    (fun pred ->
      V.Database.iter_pred db pred (fun args ->
          Buffer.add_string buf pred;
          Buffer.add_char buf '(';
          Buffer.add_string buf (V.Database.args_key args);
          Buffer.add_string buf ")\n"))
    (V.Database.predicates db)
  |> ignore;
  Buffer.contents buf

(* The deterministic slice of the profiler: every integer counter, per
   rule in registration order (times are wall-clock and excluded). *)
let dump_profile engine =
  let open V.Profile in
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%s s%d evals=%d scanned=%d matched=%d bindings=%d \
                         derived=%d dup=%d nulls=%d groups=%d"
           r.r_label r.r_stratum r.r_evals r.r_scanned r.r_matched
           r.r_bindings r.r_derived r.r_duplicates r.r_nulls r.r_groups)
       (rules (V.Engine.profile engine)))

(* [cap_domains:false] everywhere in this file: engines must exercise
   the parallel machinery at the requested domain count even on hosts
   (CI containers, pinned cgroups) with fewer cores — the default cap
   would silently turn these into sequential runs. *)
let run_program ?domains source =
  let program = V.Parser.parse source in
  let engine = V.Engine.create ?domains ~cap_domains:false program in
  Fun.protect
    ~finally:(fun () -> V.Engine.shutdown engine)
    (fun () ->
      V.Engine.run engine;
      (dump_database (V.Engine.database engine), dump_profile engine))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Tests run from [_build/default/test]; walk up to the workspace root
   to find the checked-in example programs. *)
let example_programs () =
  let rec find base depth =
    let candidate = Filename.concat base "examples/programs" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else if depth = 0 then Alcotest.fail "examples/programs not found"
    else find (Filename.concat base Filename.parent_dir_name) (depth - 1)
  in
  let dir = find (Sys.getcwd ()) 6 in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".vada")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

(* A synthetic workload big enough to actually exercise the parallel
   path: 600 edge facts put the first iteration's estimated join work
   above the engine's sequential-fallback threshold, so a multi-domain
   engine runs real chunked batches (verified below via the
   [engine.chunk] hit counter). *)
let synthetic_tc =
  let buf = Buffer.create 8192 in
  for c = 0 to 5 do
    for i = 0 to 99 do
      Buffer.add_string buf
        (Printf.sprintf "edge(%d, %d).\n" ((c * 1000) + i) ((c * 1000) + i + 1))
    done
  done;
  Buffer.add_string buf "path(X, Y) :- edge(X, Y).\n";
  Buffer.add_string buf "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  Buffer.add_string buf "@output(\"path\").\n";
  Buffer.contents buf

let synthetic_band =
  let buf = Buffer.create 8192 in
  for i = 0 to 599 do
    Buffer.add_string buf (Printf.sprintf "item(%d, %d).\n" i (i mod 97))
  done;
  Buffer.add_string buf
    "near(X, Y) :- item(X, A), item(Y, B), X < Y, A <= B + 1, B <= A + 1.\n";
  Buffer.add_string buf "@output(\"near\").\n";
  Buffer.contents buf

(* A deliberately skewed workload: one predicate whose self-join
   dominates the batch next to many tiny predicates whose rules ride in
   the same snapshot-safe batch. Adaptive chunking must cut the huge
   job fine and the tiny jobs coarse (or not at all) without disturbing
   replay order. *)
let synthetic_skewed =
  let buf = Buffer.create 16384 in
  for i = 0 to 1199 do
    Buffer.add_string buf (Printf.sprintf "big(%d, %d).\n" i (i mod 37))
  done;
  for k = 0 to 9 do
    for j = 0 to 4 do
      Buffer.add_string buf (Printf.sprintf "tiny%d(%d).\n" k j)
    done
  done;
  Buffer.add_string buf "pair(X, Y) :- big(X, A), big(Y, A), X < Y.\n";
  for k = 0 to 9 do
    Buffer.add_string buf (Printf.sprintf "small%d(X) :- tiny%d(X).\n" k k)
  done;
  Buffer.add_string buf "@output(\"pair\").\n";
  Buffer.contents buf

(* Two rules deriving the same head predicate from disjoint inputs with
   identical payloads: every fact the second job emits is an in-batch
   duplicate of the first job's, and [out]/[out2] share argument keys
   so dedup shards see the same key under different predicates. This
   hammers the sharded phase-2 classification's (pred, key) handling
   and the cross-job duplicate accounting. *)
let synthetic_collisions =
  let buf = Buffer.create 16384 in
  for i = 0 to 399 do
    Buffer.add_string buf (Printf.sprintf "a(%d).\n" i);
    Buffer.add_string buf (Printf.sprintf "b(%d).\n" i)
  done;
  Buffer.add_string buf "out(X) :- a(X).\n";
  Buffer.add_string buf "out(X) :- b(X).\n";
  Buffer.add_string buf "out2(X) :- a(X).\n";
  Buffer.add_string buf "out2(X) :- b(X).\n";
  Buffer.add_string buf "@output(\"out\").\n@output(\"out2\").\n";
  Buffer.contents buf

let test_examples_byte_identical () =
  let programs = example_programs () in
  Alcotest.(check bool) "found example programs" true (programs <> []);
  List.iter
    (fun (name, source) ->
      let seq_db, seq_prof = run_program ~domains:1 source in
      List.iter
        (fun d ->
          let par_db, par_prof = run_program ~domains:d source in
          Alcotest.(check string)
            (Printf.sprintf "%s: database identical at %d domains" name d)
            seq_db par_db;
          Alcotest.(check string)
            (Printf.sprintf "%s: profile counters identical at %d domains" name
               d)
            seq_prof par_prof)
        [ 2; 4 ])
    programs

let test_synthetic_byte_identical () =
  List.iter
    (fun (name, source) ->
      let seq_db, seq_prof = run_program ~domains:1 source in
      List.iter
        (fun d ->
          let par_db, par_prof = run_program ~domains:d source in
          Alcotest.(check string)
            (Printf.sprintf "%s: database identical at %d domains" name d)
            seq_db par_db;
          Alcotest.(check string)
            (Printf.sprintf "%s: profile counters identical at %d domains" name
               d)
            seq_prof par_prof)
        [ 2; 4 ])
    [
      ("tc", synthetic_tc);
      ("band", synthetic_band);
      ("skewed", synthetic_skewed);
      ("collisions", synthetic_collisions);
    ]

let test_collision_duplicates_accounted () =
  (* The collision workload's duplicate count must not depend on the
     domain count: every [b]-derived fact is a duplicate wherever the
     dedup verdict came from (frozen store, in-batch classification, or
     the merge's own probe). *)
  let stats_of domains =
    let program = V.Parser.parse synthetic_collisions in
    let engine = V.Engine.create ~domains ~cap_domains:false program in
    Fun.protect
      ~finally:(fun () -> V.Engine.shutdown engine)
      (fun () ->
        V.Engine.run engine;
        V.Engine.stats engine)
  in
  let seq = stats_of 1 in
  Alcotest.(check bool)
    "workload actually produces duplicates" true
    (seq.V.Engine.duplicates_suppressed >= 800);
  List.iter
    (fun d ->
      let par = stats_of d in
      Alcotest.(check int)
        (Printf.sprintf "facts derived at %d domains" d)
        seq.V.Engine.facts_derived par.V.Engine.facts_derived;
      Alcotest.(check int)
        (Printf.sprintf "duplicates suppressed at %d domains" d)
        seq.V.Engine.duplicates_suppressed par.V.Engine.duplicates_suppressed)
    [ 2; 4 ]

let test_parallel_path_actually_runs () =
  (* Arm [engine.chunk] with a zero delay: harmless, but the hit counter
     proves multi-domain runs execute chunked parallel batches. *)
  Faultpoint.reset ();
  (match Faultpoint.arm_spec "engine.chunk:delay=0ms" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (E.to_string e));
  Fun.protect ~finally:Faultpoint.reset (fun () ->
      ignore (run_program ~domains:1 synthetic_tc);
      Alcotest.(check int)
        "sequential run never chunks" 0
        (Faultpoint.hit_count "engine.chunk");
      ignore (run_program ~domains:4 synthetic_tc);
      Alcotest.(check bool)
        "parallel run executes chunk tasks" true
        (Faultpoint.hit_count "engine.chunk" > 0))

let test_adaptive_gating_skips_tiny_workloads () =
  (* The cost model must refuse to parallelize work that cannot pay for
     the fork-join machinery: a 200-fact copy stays entirely on the
     calling domain even at [~domains:4], while the 600-item band joins
     cross the work threshold and chunk. *)
  let tiny_copy =
    let buf = Buffer.create 2048 in
    for i = 0 to 199 do
      Buffer.add_string buf (Printf.sprintf "item(%d, %d).\n" i (i mod 7))
    done;
    Buffer.add_string buf "copy(X, Y) :- item(X, Y).\n";
    Buffer.add_string buf "@output(\"copy\").\n";
    Buffer.contents buf
  in
  Faultpoint.reset ();
  (match Faultpoint.arm_spec "engine.chunk:delay=0ms" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (E.to_string e));
  Fun.protect ~finally:Faultpoint.reset (fun () ->
      ignore (run_program ~domains:4 tiny_copy);
      Alcotest.(check int)
        "tiny workload never chunks at 4 domains" 0
        (Faultpoint.hit_count "engine.chunk");
      ignore (run_program ~domains:4 synthetic_band);
      Alcotest.(check bool)
        "big workload still chunks" true
        (Faultpoint.hit_count "engine.chunk" > 0))

let test_cap_domains_respects_host () =
  (* The default cap clamps [~domains] to the host's useful parallelism;
     an explicit pool is the caller's own choice and is never clamped. *)
  let program = V.Parser.parse synthetic_band in
  let capped = V.Engine.create ~domains:64 program in
  Fun.protect
    ~finally:(fun () -> V.Engine.shutdown capped)
    (fun () ->
      Alcotest.(check bool)
        "capped engine never exceeds recommended domains" true
        (V.Engine.parallelism capped <= Task_pool.recommended ()));
  let pool = Task_pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Task_pool.stop pool)
    (fun () ->
      let borrowed = V.Engine.create ~pool program in
      Fun.protect
        ~finally:(fun () -> V.Engine.shutdown borrowed)
        (fun () ->
          Alcotest.(check int) "explicit pool is never clamped" 4
            (V.Engine.parallelism borrowed)))

let test_budget_interrupt_mid_run_is_batch_prefix () =
  (* An interrupted parallel run may stop between batches, but it must
     never expose a torn batch: every predicate's fact list has to be a
     prefix of the same predicate's list in the completed sequential
     run, and the interrupt payload must agree with [stats]. *)
  let facts_keys db pred =
    V.Database.facts db pred |> List.map V.Database.args_key
  in
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
    | _ :: _, [] -> false
  in
  let program = V.Parser.parse synthetic_tc in
  let full = V.Engine.create program in
  Fun.protect
    ~finally:(fun () -> V.Engine.shutdown full)
    (fun () ->
      V.Engine.run full;
      let full_db = V.Engine.database full in
      let interrupted = V.Engine.create ~domains:4 ~cap_domains:false program in
      Fun.protect
        ~finally:(fun () -> V.Engine.shutdown interrupted)
        (fun () ->
          let budget = Budget.create ~max_facts:800 () in
          (match V.Engine.run ~budget interrupted with
          | () -> Alcotest.fail "fact budget did not interrupt"
          | exception V.Engine.Interrupted i ->
            Alcotest.(check int)
              "interrupt payload consistent with stats"
              (V.Engine.stats interrupted).V.Engine.facts_derived
              i.V.Engine.facts_derived);
          let part_db = V.Engine.database interrupted in
          List.iter
            (fun pred ->
              Alcotest.(check bool)
                (Printf.sprintf
                   "%s facts are a prefix of the sequential run's" pred)
                true
                (is_prefix (facts_keys part_db pred) (facts_keys full_db pred)))
            (V.Database.predicates part_db)))

(* --- joinstate bank -------------------------------------------------------- *)

let test_joinstate_reuses_and_resets () =
  let resets = ref 0 in
  let made = ref 0 in
  let bank =
    V.Joinstate.create
      ~make:(fun () ->
        incr made;
        ref [])
      ~reset:(fun cell ->
        incr resets;
        cell := [])
  in
  Alcotest.(check int) "empty bank parks nothing" 0 (V.Joinstate.parked bank);
  let first = V.Joinstate.acquire bank in
  first := [ 1; 2; 3 ];
  V.Joinstate.release bank first;
  Alcotest.(check int) "reset ran on release" 1 !resets;
  Alcotest.(check int) "released value is parked" 1 (V.Joinstate.parked bank);
  let second = V.Joinstate.acquire bank in
  Alcotest.(check bool) "bank reuses the parked value" true (first == second);
  Alcotest.(check (list int)) "reused value was reset" [] !second;
  Alcotest.(check int) "no fresh allocation on reuse" 1 !made;
  let third = V.Joinstate.acquire bank in
  Alcotest.(check bool) "empty bank makes a fresh value" true (third != second);
  Alcotest.(check int) "fresh allocation counted" 2 !made

let test_joinstate_with_scratch_releases_on_exception () =
  let bank = V.Joinstate.create ~make:(fun () -> ref 0) ~reset:(fun c -> c := 0) in
  (match V.Joinstate.with_scratch bank (fun c ->
       c := 42;
       failwith "boom")
   with
  | (_ : unit) -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "original exception" "boom" m);
  Alcotest.(check int)
    "scratch released despite exception" 1 (V.Joinstate.parked bank);
  let c = V.Joinstate.acquire bank in
  Alcotest.(check int) "scratch was reset" 0 !c

let test_pool_reuse_across_engines () =
  (* The server shape: one borrowed pool, several engines, shutdown is a
     no-op on the borrowed pool. *)
  let pool = Task_pool.create ~name:"shared" ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Task_pool.stop pool)
    (fun () ->
      let run () =
        let program = V.Parser.parse synthetic_band in
        let engine = V.Engine.create ~pool program in
        Fun.protect
          ~finally:(fun () -> V.Engine.shutdown engine)
          (fun () ->
            V.Engine.run engine;
            dump_database (V.Engine.database engine))
      in
      let first = run () in
      let second = run () in
      Alcotest.(check string) "pool reusable across engines" first second;
      Alcotest.(check bool)
        "engine shutdown leaves borrowed pool running" false
        (Task_pool.stopped pool))

(* --- reasoned risk across domain counts ----------------------------------- *)

let test_risk_via_engine_identical () =
  let md = D.Ig_survey.figure1 () in
  let measure = S.Risk.K_anonymity { k = 2 } in
  let seq = S.Vadalog_bridge.risk_via_engine ~domains:1 measure md in
  List.iter
    (fun d ->
      (* An explicit pool is never clamped to host cores, so the
         bridge's engine runs the parallel path even on small hosts. *)
      let pool = Task_pool.create ~domains:d () in
      Fun.protect
        ~finally:(fun () -> Task_pool.stop pool)
        (fun () ->
          let par = S.Vadalog_bridge.risk_via_engine ~pool measure md in
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "risks identical at %d domains" d)
            seq par))
    [ 2; 4 ]

(* --- derivation trees across domain counts --------------------------------- *)

(* Every fact's derivation tree rendered as text, for every predicate
   in the finished database. Parallel evaluation merges worker
   derivations in sequential order, so the provenance store — and with
   it every tree [vadasa explain] prints — must be byte-identical
   however many domains evaluated the chase. The depth bound keeps the
   dump linear in the database size on recursive programs and also
   pins the [Unknown] cut to the same facts at every domain count. *)
let provenance_dump ?domains source =
  let program = V.Parser.parse source in
  let engine = V.Engine.create ?domains ~cap_domains:false program in
  Fun.protect
    ~finally:(fun () -> V.Engine.shutdown engine)
    (fun () ->
      V.Engine.run engine;
      let db = V.Engine.database engine in
      let buf = Buffer.create 8192 in
      List.iter
        (fun pred ->
          V.Database.iter_pred db pred (fun args ->
              match V.Engine.explain ~max_depth:6 engine pred args with
              | Some tree ->
                Buffer.add_string buf (V.Provenance.to_string tree);
                Buffer.add_char buf '\n'
              | None -> Alcotest.failf "no provenance for a %s fact" pred))
        (V.Database.predicates db);
      Buffer.contents buf)

let test_provenance_byte_identical () =
  let programs =
    example_programs () @ [ ("tc", synthetic_tc); ("band", synthetic_band) ]
  in
  List.iter
    (fun (name, source) ->
      let seq = provenance_dump ~domains:1 source in
      List.iter
        (fun d ->
          let par = provenance_dump ~domains:d source in
          Alcotest.(check string)
            (Printf.sprintf "%s: derivation trees identical at %d domains"
               name d)
            seq par)
        [ 2; 4 ])
    programs

(* --- fault injection into the parallel path ------------------------------- *)

let test_chunk_fault_typed_error () =
  Faultpoint.reset ();
  (match Faultpoint.arm_spec "engine.chunk:fail@2" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (E.to_string e));
  Fun.protect ~finally:Faultpoint.reset (fun () ->
      let program = V.Parser.parse synthetic_tc in
      let engine = V.Engine.create ~domains:4 ~cap_domains:false program in
      Fun.protect
        ~finally:(fun () -> V.Engine.shutdown engine)
        (fun () ->
          match V.Engine.run engine with
          | () -> Alcotest.fail "armed chunk fault did not fire"
          | exception E.Error err ->
            Alcotest.(check string) "typed code" "fault.engine.chunk"
              err.E.code))

let test_stratum_fault_typed_error () =
  Faultpoint.reset ();
  (match Faultpoint.arm_spec "engine.stratum:fail" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (E.to_string e));
  Fun.protect ~finally:Faultpoint.reset (fun () ->
      let program = V.Parser.parse synthetic_tc in
      let engine = V.Engine.create ~domains:4 ~cap_domains:false program in
      Fun.protect
        ~finally:(fun () -> V.Engine.shutdown engine)
        (fun () ->
          match V.Engine.run engine with
          | () -> Alcotest.fail "armed stratum fault did not fire"
          | exception E.Error err ->
            Alcotest.(check string) "typed code" "fault.engine.stratum"
              err.E.code))

let test_budget_interrupt_parallel () =
  (* A zero-fact budget must interrupt a multi-domain chase with the
     same structured payload the sequential engine raises. *)
  let program = V.Parser.parse synthetic_tc in
  let engine = V.Engine.create ~domains:4 ~cap_domains:false program in
  Fun.protect
    ~finally:(fun () -> V.Engine.shutdown engine)
    (fun () ->
      let budget = Budget.create ~max_facts:10 () in
      match V.Engine.run ~budget engine with
      | () -> Alcotest.fail "fact ceiling did not interrupt"
      | exception V.Engine.Interrupted i ->
        Alcotest.(check bool)
          "fact ceiling reason" true
          (i.V.Engine.reason = Budget.Fact_ceiling))

(* --- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create validates domains" `Quick
            test_pool_create_invalid;
          Alcotest.test_case "ordered results" `Quick test_pool_ordered_results;
          Alcotest.test_case "exception capture" `Quick
            test_pool_exception_capture;
          Alcotest.test_case "concurrent submitters" `Quick
            test_pool_concurrent_submitters;
          Alcotest.test_case "stop idempotent + sequential fallback" `Quick
            test_pool_stop_idempotent;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "example programs, domains 1/2/4" `Slow
            test_examples_byte_identical;
          Alcotest.test_case "synthetic workloads, domains 1/2/4" `Slow
            test_synthetic_byte_identical;
          Alcotest.test_case "cross-job duplicates accounted" `Quick
            test_collision_duplicates_accounted;
          Alcotest.test_case "parallel path actually chunks" `Quick
            test_parallel_path_actually_runs;
          Alcotest.test_case "adaptive gating skips tiny workloads" `Quick
            test_adaptive_gating_skips_tiny_workloads;
          Alcotest.test_case "cap_domains respects the host" `Quick
            test_cap_domains_respects_host;
          Alcotest.test_case "shared pool across engines" `Quick
            test_pool_reuse_across_engines;
          Alcotest.test_case "reasoned risks, domains 1/2/4" `Slow
            test_risk_via_engine_identical;
          Alcotest.test_case "derivation trees, domains 1/2/4" `Slow
            test_provenance_byte_identical;
        ] );
      ( "joinstate",
        [
          Alcotest.test_case "reuse and reset" `Quick
            test_joinstate_reuses_and_resets;
          Alcotest.test_case "with_scratch releases on exception" `Quick
            test_joinstate_with_scratch_releases_on_exception;
        ] );
      ( "faults",
        [
          Alcotest.test_case "chunk fault is typed" `Quick
            test_chunk_fault_typed_error;
          Alcotest.test_case "stratum fault is typed" `Quick
            test_stratum_fault_typed_error;
          Alcotest.test_case "budget interrupts parallel run" `Quick
            test_budget_interrupt_parallel;
          Alcotest.test_case "interrupted run is a batch prefix" `Quick
            test_budget_interrupt_mid_run_is_batch_prefix;
        ] );
    ]
