(* Tests for the incremental SDC subsystem: reuse-the-fixpoint chase
   continuation ([Engine.run_incremental] + [Canonical] byte-equality
   against a from-scratch chase, at 1/2/4 domains), delta-maintained
   risk scoring ([Risk.Incremental] vs. a full [Risk.estimate],
   byte-identical reports), the dataset registry's lifecycle and
   consistency contract (conflicts, LRU eviction, mid-append fault
   injection), and the /v1/datasets HTTP surface end-to-end —
   including the snapshot cache's invalidation on append. *)

module Srv = Vadasa_server
module Http = Srv.Http
module Json = Vadasa_base.Json
module E = Vadasa_base.Error
module Value = Vadasa_base.Value
module Faultpoint = Vadasa_resilience.Faultpoint
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else String.sub haystack i nl = needle || go (i + 1)
  in
  nl = 0 || go 0

(* --- engine: incremental continuation equals from-scratch ----------------- *)

(* Monotone program with a join, recursion and an existential head (the
   chase invents nulls, so equality must hold modulo null renaming —
   exactly what [Canonical.of_engine] renders). *)
let monotone_src =
  {|
    near(X, Y) :- item(X, A), item(Y, A), X < Y.
    hub(X, H) :- near(X, Y).
    reach(X, Y) :- near(X, Y).
    reach(X, Z) :- reach(X, Y), near(Y, Z).
  |}

let item i = ("item", [| Value.Int i; Value.Int (i mod 7) |])

let items lo hi = List.init (hi - lo) (fun k -> item (lo + k))

let canonical_scratch ?strat src facts =
  let program =
    V.Program.union (V.Parser.parse src) (V.Program.make ~facts [])
  in
  let engine = V.Engine.create ?strat program in
  V.Engine.run engine;
  let c = V.Canonical.of_engine engine in
  V.Engine.shutdown engine;
  c

(* Run base, snapshot, then absorb each delta with [run_incremental]. *)
let canonical_incremental ~domains src base deltas =
  let program =
    V.Program.union (V.Parser.parse src) (V.Program.make ~facts:base [])
  in
  let engine = V.Engine.create ~domains program in
  V.Engine.run engine;
  let snap = ref (V.Engine.snapshot engine) in
  List.iter
    (fun delta ->
      List.iter (fun (p, args) -> V.Engine.add_fact_array engine p args) delta;
      snap := V.Engine.run_incremental ~snapshot:!snap engine)
    deltas;
  let c = V.Canonical.of_engine engine in
  V.Engine.shutdown engine;
  c

let test_incremental_equals_scratch () =
  let expected = canonical_scratch monotone_src (items 0 30) in
  Alcotest.(check bool) "chase derived something" true
    (String.length expected > 0);
  List.iter
    (fun domains ->
      let got =
        canonical_incremental ~domains monotone_src (items 0 20)
          [ items 20 25; items 25 30 ]
      in
      Alcotest.(check string)
        (Printf.sprintf "append(d1); append(d2) = scratch at %d domains"
           domains)
        expected got)
    [ 1; 2; 4 ]

let negation_src =
  {|
    blocked(Y) :- edge(X, Y).
    root(X) :- node(X), not blocked(X).
  |}

let node i = ("node", [| Value.Int i |])
let edge a b = ("edge", [| Value.Int a; Value.Int b |])

let test_incremental_negation_safe_delta () =
  (* A delta that leaves every negated input untouched continues fine. *)
  let base = [ node 1; node 2; node 3; edge 1 2 ] in
  let delta = [ node 4; node 5 ] in
  let expected = canonical_scratch negation_src (base @ delta) in
  Alcotest.(check string) "nodes-only delta continues through negation"
    expected
    (canonical_incremental ~domains:1 negation_src base [ delta ])

let test_incremental_negation_invalidates () =
  let base = [ node 1; node 2; node 3; edge 1 2 ] in
  let program =
    V.Program.union (V.Parser.parse negation_src) (V.Program.make ~facts:base [])
  in
  let engine = V.Engine.create program in
  V.Engine.run engine;
  let snap = V.Engine.snapshot engine in
  (* edge growth feeds [blocked], the negated input of [root]: the
     previous fixpoint no longer holds and the continuation must be
     abandoned, not silently wrong. *)
  List.iter
    (fun (p, args) -> V.Engine.add_fact_array engine p args)
    [ edge 2 3 ];
  (match V.Engine.run_incremental ~snapshot:snap engine with
  | _ -> Alcotest.fail "expected Invalidated"
  | exception V.Engine.Invalidated _ -> ());
  V.Engine.shutdown engine;
  (* recovery: a fresh from-scratch engine over the union is the
     documented fallback, and trivially correct *)
  let expected = canonical_scratch negation_src (base @ [ edge 2 3 ]) in
  Alcotest.(check bool) "rebuild recovers" true (String.length expected > 0)

let score g i w = ("score", [| Value.Str g; Value.Int i; Value.Float w |])

let test_incremental_agg_binding_invalidates () =
  let src = "total(G, S) :- score(G, I, W), S = msum(W, <I>)." in
  let base = [ score "a" 1 0.5; score "a" 2 1.5; score "b" 1 2.0 ] in
  let program =
    V.Program.union (V.Parser.parse src) (V.Program.make ~facts:base [])
  in
  let engine = V.Engine.create program in
  V.Engine.run engine;
  let snap = V.Engine.snapshot engine in
  List.iter
    (fun (p, args) -> V.Engine.add_fact_array engine p args)
    [ score "a" 3 1.0 ];
  (match V.Engine.run_incremental ~snapshot:snap engine with
  | _ -> Alcotest.fail "expected Invalidated (aggregate binding grew)"
  | exception V.Engine.Invalidated _ -> ());
  V.Engine.shutdown engine

let test_incremental_agg_test_continues () =
  (* Aggregate *tests* keep their contributor tables inside the engine,
     so a continuation stays exact even when the delta pushes a group
     over the threshold. *)
  let src = "big(G) :- score(G, I, W), msum(W, <I>) > 2.0." in
  let base = [ score "a" 1 0.5; score "a" 2 1.0; score "b" 1 2.5 ] in
  let delta = [ score "a" 3 1.0 ] in
  let expected = canonical_scratch src (base @ delta) in
  Alcotest.(check bool) "delta tips group a over" true
    (contains expected "big(string:a)");
  Alcotest.(check string) "aggregate test continues" expected
    (canonical_incremental ~domains:1 src base [ delta ])

(* --- shared microdata fixtures -------------------------------------------- *)

let figure6_csv =
  lazy (R.Csv.write_string (S.Microdata.relation (D.Suite.load ~scale:0.05 "R6A4U")))

(* header + rows[lo, hi) as a standalone CSV document *)
let csv_slice csv lo hi =
  match String.split_on_char '\n' csv with
  | header :: rows ->
    let rows = List.filter (fun r -> r <> "") rows in
    let keep = List.filteri (fun i _ -> i >= lo && i < hi) rows in
    header ^ "\n" ^ String.concat "\n" keep ^ "\n"
  | [] -> assert false

let csv_rows csv =
  match String.split_on_char '\n' csv with
  | _ :: rows -> List.length (List.filter (fun r -> r <> "") rows)
  | [] -> 0

(* base ~2/3, then two deltas *)
let slice3 csv =
  let n = csv_rows csv in
  let n1 = 2 * n / 3 and n2 = 5 * n / 6 in
  (csv_slice csv 0 n1, csv_slice csv n1 n2, csv_slice csv n2 n)

let md_of_csv csv =
  match
    Srv.Codec.microdata_of_payload
      { Srv.Codec.csv; options = Srv.Codec.default_options }
  with
  | Ok md -> md
  | Error e -> Alcotest.failf "microdata: %s" (E.to_string e)

let render md report = Srv.Codec.risk_report_string ~threshold:0.5 md report

(* --- risk: incremental re-scoring equals a full estimate ------------------ *)

let test_risk_incremental_equals_full () =
  let csv = Lazy.force figure6_csv in
  let base, d1, d2 = slice3 csv in
  let cases =
    [
      ("re-identification", S.Risk.Re_identification, None);
      ("k-anonymity", S.Risk.K_anonymity { k = 2 }, None);
      ("individual naive", S.Risk.Individual S.Risk.Naive, None);
      ( "individual benedetti-franconi",
        S.Risk.Individual S.Risk.Benedetti_franconi,
        None );
      (* order-dependent estimator: delta maintenance is invalid, the
         scorer must fall back to a full re-estimate — and still match *)
      ( "individual monte-carlo",
        S.Risk.Individual (S.Risk.Monte_carlo { samples = 40; seed = 7 }),
        Some S.Risk.Incremental.Measure_order );
    ]
  in
  List.iter
    (fun (label, measure, expected_fallback) ->
      let md = md_of_csv base in
      let scorer = S.Risk.Incremental.create measure md in
      let append_delta delta =
        let dmd = md_of_csv delta in
        R.Relation.iter
          (R.Relation.add (S.Microdata.relation md))
          (S.Microdata.relation dmd);
        S.Risk.Incremental.append scorer
      in
      let o1 = append_delta d1 in
      let o2 = append_delta d2 in
      Alcotest.(check int)
        (label ^ ": delta sizes") (csv_rows d1 + csv_rows d2)
        (o1.S.Risk.Incremental.rows_added + o2.S.Risk.Incremental.rows_added);
      (match expected_fallback with
      | Some fb ->
        Alcotest.(check (option string))
          (label ^ ": fallback fired")
          (Some (S.Risk.Incremental.fallback_to_string fb))
          (Option.map S.Risk.Incremental.fallback_to_string
             o2.S.Risk.Incremental.fallback)
      | None ->
        Alcotest.(check bool)
          (label ^ ": no fallback") true
          (o2.S.Risk.Incremental.fallback = None));
      let md_union = md_of_csv csv in
      Alcotest.(check string)
        (label ^ ": report byte-identical to full estimate")
        (render md_union (S.Risk.estimate measure md_union))
        (render md (S.Risk.Incremental.report scorer)))
    cases

(* --- dataset registry ------------------------------------------------------ *)

let default_measure () =
  match Srv.Codec.measure_of_options Srv.Codec.default_options with
  | Ok m -> m
  | Error e -> Alcotest.failf "measure: %s" (E.to_string e)

let put_csv ?compiled reg id csv =
  Srv.Registry.put reg ~id ~digest:csv ~bytes:(String.length csv)
    ~options:Srv.Codec.default_options ~measure:(default_measure ())
    ~compiled:(Option.value ~default:None (Option.map Option.some compiled))
    (md_of_csv csv)

let check_typed_error what code f =
  match f () with
  | _ -> Alcotest.failf "%s: expected error %s" what code
  | exception E.Error e -> Alcotest.(check string) what code e.E.code

let test_registry_lifecycle () =
  let reg = Srv.Registry.create ~capacity:16 () in
  let base, d1, _ = slice3 (Lazy.force figure6_csv) in
  let outcome = put_csv reg "fig" base in
  Alcotest.(check bool) "created" true outcome.Srv.Registry.created;
  Alcotest.(check (list string)) "listed" [ "fig" ] (Srv.Registry.ids reg);
  let again = put_csv reg "fig" base in
  Alcotest.(check bool) "idempotent re-PUT" false again.Srv.Registry.created;
  check_typed_error "clashing content" "dataset.conflict" (fun () ->
      put_csv reg "fig" d1);
  check_typed_error "bad id" "dataset.bad_id" (fun () ->
      put_csv reg "bad/id" base);
  Alcotest.(check bool) "delete" true (Srv.Registry.delete reg "fig");
  Alcotest.(check bool) "gone" true (Srv.Registry.find reg "fig" = None);
  Alcotest.(check bool) "double delete" false (Srv.Registry.delete reg "fig");
  check_typed_error "get after delete" "dataset.not_found" (fun () ->
      Srv.Registry.get reg "fig")

let test_registry_lru_eviction () =
  let reg = Srv.Registry.create ~capacity:2 () in
  let base, _, _ = slice3 (Lazy.force figure6_csv) in
  ignore (put_csv reg "a" base);
  ignore (put_csv reg "b" base);
  (* touch "a" so "b" is the least recently used *)
  ignore (Srv.Registry.find reg "a");
  ignore (put_csv reg "c" base);
  let totals = Srv.Registry.totals reg in
  Alcotest.(check int) "bounded" 2 totals.Srv.Registry.registered;
  Alcotest.(check int) "one eviction" 1 totals.Srv.Registry.evictions;
  Alcotest.(check bool) "b evicted" true (Srv.Registry.find reg "b" = None);
  Alcotest.(check bool) "a kept" true (Srv.Registry.find reg "a" <> None)

let test_registry_append_consistency () =
  let audit_lines = ref [] in
  let reg =
    Srv.Registry.create ~capacity:4
      ~audit:(fun line -> audit_lines := line :: !audit_lines)
      ()
  in
  let csv = Lazy.force figure6_csv in
  let base, d1, _ = slice3 csv in
  let entry = (put_csv reg "fig" base).Srv.Registry.entry in
  let rows () =
    R.Relation.cardinal (S.Microdata.relation (Srv.Registry.entry_md entry))
  in
  let n_base = rows () in
  (* invalid deltas are rejected before any state changes *)
  check_typed_error "schema mismatch" "dataset.conflict" (fun () ->
      Srv.Registry.append reg entry ~csv:"a,b\n1,2\n");
  let header = List.hd (String.split_on_char '\n' base) in
  check_typed_error "ragged delta" "dataset.bad_delta" (fun () ->
      Srv.Registry.append reg entry ~csv:(header ^ "\n1\n"));
  Alcotest.(check int) "rows untouched by rejects" n_base (rows ());
  (* a fault injected mid-append leaves the last consistent fixpoint *)
  let before =
    render (Srv.Registry.entry_md_snapshot entry)
      (Srv.Registry.entry_report entry)
  in
  Fun.protect ~finally:Faultpoint.reset (fun () ->
      Faultpoint.reset ();
      (match Faultpoint.arm "dataset.append" Faultpoint.Fail with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
      check_typed_error "injected fault" "fault.dataset.append" (fun () ->
          Srv.Registry.append reg entry ~csv:d1);
      Faultpoint.reset ();
      Alcotest.(check int) "rows untouched by fault" n_base (rows ());
      Alcotest.(check string) "report untouched by fault" before
        (render
           (Srv.Registry.entry_md_snapshot entry)
           (Srv.Registry.entry_report entry)));
  (* the same delta then applies cleanly *)
  let outcome = Srv.Registry.append reg entry ~csv:d1 in
  Alcotest.(check int) "rows added" (csv_rows d1)
    outcome.Srv.Registry.rows_added;
  Alcotest.(check int) "rows total" (n_base + csv_rows d1) (rows ());
  (* the maintained report equals a from-scratch estimate on the union *)
  let snap_md = Srv.Registry.entry_md_snapshot entry in
  Alcotest.(check string) "maintained report = full estimate"
    (render snap_md (S.Risk.estimate (default_measure ()) snap_md))
    (render snap_md (Srv.Registry.entry_report entry));
  ignore (Srv.Registry.delete reg "fig");
  let events =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Ok json -> Option.bind (Json.member "event" json) Json.to_string_opt
        | Error _ -> None)
      (List.rev !audit_lines)
  in
  Alcotest.(check (list string))
    "audit trail: one line per decision"
    [ "register"; "append"; "delete" ]
    events

let test_registry_chase_incremental () =
  (* A monotone program over the bridge's [val] facts: the continuation
     path actually runs (no rebuild), and the registry's saturated
     database must be byte-identical — via [Canonical] — to a
     from-scratch chase over the unioned dataset. *)
  let src = "pair(I, J) :- val(D, I, A, X), val(D, J, A, X), I < J." in
  let program = V.Parser.parse src in
  let strat = V.Stratify.compute program in
  let reg = Srv.Registry.create ~capacity:4 () in
  let csv = Lazy.force figure6_csv in
  let base, d1, d2 = slice3 csv in
  let entry =
    (put_csv ~compiled:(program, strat) reg "fig" base).Srv.Registry.entry
  in
  let o1 = Srv.Registry.append reg entry ~csv:d1 in
  Alcotest.(check string) "first delta continues" "incremental"
    o1.Srv.Registry.chase_mode;
  let o2 = Srv.Registry.append reg entry ~csv:d2 in
  Alcotest.(check string) "second delta continues" "incremental"
    o2.Srv.Registry.chase_mode;
  let engine =
    match Srv.Registry.entry_engine entry with
    | Some e -> e
    | None -> Alcotest.fail "chase is materialized"
  in
  let scratch =
    let md_union = md_of_csv csv in
    canonical_scratch ~strat src (S.Vadalog_bridge.microdata_facts md_union)
  in
  Alcotest.(check string) "registry chase byte-identical to scratch" scratch
    (V.Canonical.of_engine engine)

let test_cache_remove () =
  let c = Srv.Cache.create ~capacity:4 "t" in
  ignore (Srv.Cache.find_or_build c "k" (fun _ -> 1));
  Srv.Cache.remove c "k";
  Alcotest.(check (option int)) "removed" None (Srv.Cache.find_opt c "k");
  (* removing an absent key is a no-op *)
  Srv.Cache.remove c "k"

(* --- end-to-end over HTTP -------------------------------------------------- *)

let http_call ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Buffer.create (String.length body + 256) in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        (("host", "localhost") :: headers);
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n\r\n" (String.length body));
      Buffer.add_string buf body;
      let raw = Buffer.to_bytes buf in
      let off = ref 0 in
      while !off < Bytes.length raw do
        off := !off + Unix.write fd raw !off (Bytes.length raw - !off)
      done;
      let resp = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes resp chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents resp in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let body =
        let rec find i =
          if i + 4 > String.length raw then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> ""
      in
      (status, body))

let with_server k =
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 4;
      request_timeout = 60.0;
    }
  in
  let handlers = Srv.Handlers.create () in
  let server = Srv.Server.create ~config handlers in
  Srv.Server.start server;
  Fun.protect
    ~finally:(fun () -> Srv.Server.shutdown server)
    (fun () -> k (Srv.Server.port server))

let json_of body =
  match Json.of_string body with
  | Ok json -> json
  | Error m -> Alcotest.failf "body is JSON: %s (%s)" m body

let error_code body =
  Option.bind (Json.member "error" (json_of body)) (fun e ->
      Option.bind (Json.member "code" e) Json.to_string_opt)

let test_e2e_registry_flow () =
  let csv = Lazy.force figure6_csv in
  let base, d1, d2 = slice3 csv in
  let csv_headers = [ ("content-type", "text/csv") ] in
  with_server (fun port ->
      let call = http_call ~port in
      (* register *)
      let status, body =
        call ~meth:"PUT" ~target:"/v1/datasets/fig?threshold=0.5"
          ~headers:csv_headers ~body:base ()
      in
      Alcotest.(check int) "PUT 201" 201 status;
      Alcotest.(check (option bool))
        "created" (Some true)
        (Option.bind (Json.member "created" (json_of body)) Json.to_bool_opt);
      (* idempotent re-PUT *)
      let status, _ =
        call ~meth:"PUT" ~target:"/v1/datasets/fig?threshold=0.5"
          ~headers:csv_headers ~body:base ()
      in
      Alcotest.(check int) "re-PUT 200" 200 status;
      (* clashing content *)
      let status, body =
        call ~meth:"PUT" ~target:"/v1/datasets/fig" ~headers:csv_headers
          ~body:d1 ()
      in
      Alcotest.(check int) "conflict 409" 409 status;
      Alcotest.(check (option string))
        "conflict code" (Some "dataset.conflict") (error_code body);
      (* list *)
      let status, body = call ~meth:"GET" ~target:"/v1/datasets" () in
      Alcotest.(check int) "list 200" 200 status;
      Alcotest.(check (option int))
        "one dataset" (Some 1)
        (Option.bind (Json.member "count" (json_of body)) Json.to_int_opt);
      (* first append *)
      let status, body =
        call ~meth:"POST" ~target:"/v1/datasets/fig/facts"
          ~headers:csv_headers ~body:d1 ()
      in
      Alcotest.(check int) "append 200" 200 status;
      Alcotest.(check (option int))
        "rows_total after d1"
        (Some (csv_rows base + csv_rows d1))
        (Option.bind (Json.member "rows_total" (json_of body)) Json.to_int_opt);
      (* populate the full-mode snapshot cache, then invalidate it *)
      let _, full_before_d2 =
        call ~meth:"GET" ~target:"/v1/datasets/fig/risk?mode=full" ()
      in
      (* second append *)
      let status, _ =
        call ~meth:"POST" ~target:"/v1/datasets/fig/facts"
          ~headers:csv_headers ~body:d2 ()
      in
      Alcotest.(check int) "append d2 200" 200 status;
      (* incremental report = from-scratch full mode, byte-identical *)
      let status, incremental =
        call ~meth:"GET" ~target:"/v1/datasets/fig/risk" ()
      in
      Alcotest.(check int) "risk 200" 200 status;
      let status, full =
        call ~meth:"GET" ~target:"/v1/datasets/fig/risk?mode=full" ()
      in
      Alcotest.(check int) "full 200" 200 status;
      Alcotest.(check string) "incremental = full, byte-identical"
        incremental full;
      (* the cached pre-append snapshot must not leak through *)
      Alcotest.(check bool) "append invalidated the snapshot cache" false
        (String.equal full full_before_d2);
      (* = the stateless endpoint on the union CSV *)
      let status, shown =
        call ~meth:"GET" ~target:"/v1/datasets/fig?include=csv" ()
      in
      Alcotest.(check int) "show 200" 200 status;
      let union_csv =
        match
          Option.bind (Json.member "csv" (json_of shown)) Json.to_string_opt
        with
        | Some s -> s
        | None -> Alcotest.fail "include=csv returns the document"
      in
      Alcotest.(check int) "union rows" (csv_rows csv) (csv_rows union_csv);
      let status, stateless =
        call ~meth:"POST" ~target:"/v1/risk?threshold=0.5"
          ~headers:csv_headers ~body:union_csv ()
      in
      Alcotest.(check int) "stateless 200" 200 status;
      Alcotest.(check string) "registry = POST /v1/risk on the union"
        stateless incremental;
      (* registry series on the Prometheus exposition *)
      let status, prom =
        call ~meth:"GET" ~target:"/metrics"
          ~headers:[ ("accept", "text/plain; version=0.0.4") ]
          ()
      in
      Alcotest.(check int) "metrics 200" 200 status;
      List.iter
        (fun series ->
          Alcotest.(check bool) ("exposes " ^ series) true
            (contains prom series))
        [
          "vadasa_datasets_registered 1";
          "vadasa_datasets_appends_total 2";
          "vadasa_datasets_bytes";
          "vadasa_datasets_rows";
        ];
      (* typed errors with mapped statuses *)
      let status, body =
        call ~meth:"GET" ~target:"/v1/datasets/nope/risk" ()
      in
      Alcotest.(check int) "unknown id 404" 404 status;
      Alcotest.(check (option string))
        "not_found code" (Some "dataset.not_found") (error_code body);
      let status, body =
        call ~meth:"POST" ~target:"/v1/datasets/fig/facts"
          ~headers:csv_headers ~body:"a,b\n1,2\n" ()
      in
      Alcotest.(check int) "schema mismatch 409" 409 status;
      Alcotest.(check (option string))
        "mismatch code" (Some "dataset.conflict") (error_code body);
      (* delete, then the id resolves no more *)
      let status, _ = call ~meth:"DELETE" ~target:"/v1/datasets/fig" () in
      Alcotest.(check int) "delete 200" 200 status;
      let status, _ = call ~meth:"GET" ~target:"/v1/datasets/fig" () in
      Alcotest.(check int) "deleted 404" 404 status)

let () =
  Alcotest.run "incremental"
    [
      ( "engine",
        [
          Alcotest.test_case "append = scratch at 1/2/4 domains" `Quick
            test_incremental_equals_scratch;
          Alcotest.test_case "negation: safe delta continues" `Quick
            test_incremental_negation_safe_delta;
          Alcotest.test_case "negation: unsafe delta invalidates" `Quick
            test_incremental_negation_invalidates;
          Alcotest.test_case "aggregate binding invalidates" `Quick
            test_incremental_agg_binding_invalidates;
          Alcotest.test_case "aggregate test continues" `Quick
            test_incremental_agg_test_continues;
        ] );
      ( "risk",
        [
          Alcotest.test_case "incremental = full estimate, all measures"
            `Quick test_risk_incremental_equals_full;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lifecycle" `Quick test_registry_lifecycle;
          Alcotest.test_case "LRU eviction" `Quick test_registry_lru_eviction;
          Alcotest.test_case "append consistency + fault injection" `Quick
            test_registry_append_consistency;
          Alcotest.test_case "chase continuation = scratch" `Quick
            test_registry_chase_incremental;
          Alcotest.test_case "cache remove" `Quick test_cache_remove;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "upload/append/re-risk/delete" `Quick
            test_e2e_registry_flow;
        ] );
    ]
