(* Tests for the vadasa serve subsystem: the HTTP parser and serializer,
   the router, the shared LRU caches, the domain worker pool, concurrent
   reads of a quiescent fact store, and an end-to-end in-process server
   exercised over real sockets (64 concurrent risk requests must come
   back byte-identical to the CLI's [risk --json] rendering, a repeat
   reasoned request must hit the compiled-program cache, and a saturated
   pool must answer 503). *)

module Srv = Vadasa_server
module Http = Srv.Http
module Json = Vadasa_base.Json
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

(* --- HTTP parser -------------------------------------------------------- *)

let parse s = Http.read_request (Http.reader_of_string s)

let check_error what expected = function
  | Ok (_ : Http.request) -> Alcotest.failf "%s: expected an error" what
  | Error e ->
    Alcotest.(check int)
      what expected (Http.error_response e).Http.status

let test_parse_get () =
  match parse "GET /v1/x?a=1&b=hello%20world HTTP/1.1\r\nHost: h\r\n\r\n" with
  | Error _ -> Alcotest.fail "expected a parse"
  | Ok req ->
    Alcotest.(check string) "path" "/v1/x" req.Http.path;
    Alcotest.(check (option string)) "a" (Some "1") (Http.query_param req "a");
    Alcotest.(check (option string))
      "decoded" (Some "hello world")
      (Http.query_param req "b");
    Alcotest.(check (option string))
      "header, case-insensitive" (Some "h") (Http.header req "HOST");
    Alcotest.(check string) "empty body" "" req.Http.body

let test_parse_post_body () =
  let body = "col\n1\n2\n" in
  let raw =
    Printf.sprintf
      "POST /v1/risk HTTP/1.1\r\ncontent-type: text/csv\r\ncontent-length: \
       %d\r\n\r\n%s"
      (String.length body) body
  in
  match parse raw with
  | Error _ -> Alcotest.fail "expected a parse"
  | Ok req ->
    Alcotest.(check string) "body" body req.Http.body;
    Alcotest.(check bool) "method" true (req.Http.meth = Http.POST)

let test_parse_body_split_across_reads () =
  (* a reader that yields one byte at a time still produces the body *)
  let body = String.make 70 'x' in
  let raw =
    Printf.sprintf "POST / HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
      (String.length body) body
  in
  let pos = ref 0 in
  let one_byte buf off _len =
    if !pos >= String.length raw then 0
    else begin
      Bytes.set buf off raw.[!pos];
      incr pos;
      1
    end
  in
  match Http.read_request one_byte with
  | Error _ -> Alcotest.fail "expected a parse"
  | Ok req -> Alcotest.(check string) "body" body req.Http.body

let test_oversized_body_413 () =
  let limits = { Http.default_limits with Http.max_body_bytes = 10 } in
  let raw = "POST / HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world" in
  (match Http.read_request ~limits (Http.reader_of_string raw) with
  | Ok _ -> Alcotest.fail "expected 413"
  | Error e ->
    Alcotest.(check int) "413" 413 (Http.error_response e).Http.status);
  (* at the limit is fine *)
  let raw = "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nhelloworld" in
  match Http.read_request ~limits (Http.reader_of_string raw) with
  | Ok req -> Alcotest.(check string) "at limit" "helloworld" req.Http.body
  | Error _ -> Alcotest.fail "10 bytes should parse"

let test_malformed_400 () =
  check_error "garbage request line" 400 (parse "NOT-HTTP\r\n\r\n");
  check_error "bad version" 400 (parse "GET / HTTP/9.9\r\n\r\n");
  check_error "header without colon" 400
    (parse "GET / HTTP/1.1\r\nbadheader\r\n\r\n");
  check_error "negative content-length" 400
    (parse "POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n");
  check_error "non-numeric content-length" 400
    (parse "POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n");
  check_error "truncated body" 400
    (parse "POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort");
  check_error "truncated headers" 400 (parse "GET / HTTP/1.1\r\nhost: h\r\n")

let test_chunked_501 () =
  check_error "chunked" 501
    (parse "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")

let test_header_block_limit () =
  let limits = { Http.default_limits with Http.max_header_bytes = 64 } in
  let raw =
    "GET / HTTP/1.1\r\nbig: " ^ String.make 200 'x' ^ "\r\n\r\n"
  in
  match Http.read_request ~limits (Http.reader_of_string raw) with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error e ->
    Alcotest.(check int) "400" 400 (Http.error_response e).Http.status

let test_response_round_trip () =
  let resp = Http.response ~status:200 "{\"ok\":true}" in
  let wire = Http.response_to_string resp in
  Alcotest.(check bool)
    "status line" true
    (Astring_contains.contains wire "HTTP/1.1 200 OK\r\n");
  Alcotest.(check bool)
    "content-length" true
    (Astring_contains.contains wire "content-length: 11\r\n");
  Alcotest.(check bool)
    "connection close" true
    (Astring_contains.contains wire "connection: close\r\n")

let test_percent_decode () =
  Alcotest.(check string)
    "plus and hex" "a b/c" (Http.percent_decode "a+b%2Fc");
  Alcotest.(check string) "lone percent" "100%" (Http.percent_decode "100%")

(* --- router -------------------------------------------------------------- *)

let dummy_handler body _req = Http.response ~status:200 body

let test_router_dispatch () =
  let router =
    Srv.Router.create
      [
        (Http.GET, "/a", dummy_handler "a");
        (Http.POST, "/a", dummy_handler "posted");
        (Http.GET, "/b", dummy_handler "b");
      ]
  in
  let req meth path =
    match
      parse (Printf.sprintf "%s %s HTTP/1.1\r\n\r\n" meth path)
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "request builds"
  in
  Alcotest.(check string)
    "GET /a" "a"
    (Srv.Router.dispatch router (req "GET" "/a")).Http.resp_body;
  Alcotest.(check string)
    "POST /a" "posted"
    (Srv.Router.dispatch router (req "POST" "/a")).Http.resp_body;
  Alcotest.(check int)
    "unknown path" 404
    (Srv.Router.dispatch router (req "GET" "/nope")).Http.status;
  let not_allowed = Srv.Router.dispatch router (req "DELETE" "/b") in
  Alcotest.(check int) "wrong method" 405 not_allowed.Http.status;
  Alcotest.(check (option string))
    "allow header" (Some "GET")
    (List.assoc_opt "allow" not_allowed.Http.resp_headers)

(* --- cache --------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Srv.Cache.create ~capacity:8 "t" in
  Alcotest.(check (option int)) "empty" None (Srv.Cache.find_opt c "k");
  let v, hit = Srv.Cache.find_or_build_hit c "k" (fun _ -> 42) in
  Alcotest.(check int) "built" 42 v;
  Alcotest.(check bool) "first is a miss" false hit;
  let v, hit = Srv.Cache.find_or_build_hit c "k" (fun _ -> 99) in
  Alcotest.(check int) "cached value survives" 42 v;
  Alcotest.(check bool) "second is a hit" true hit;
  Alcotest.(check int) "hits" 1 (Srv.Cache.hits c);
  (* find_opt "k" missed once, find_or_build_hit missed once *)
  Alcotest.(check int) "misses" 2 (Srv.Cache.misses c)

let test_cache_lru_eviction () =
  let c = Srv.Cache.create ~capacity:2 "t" in
  ignore (Srv.Cache.find_or_build c "a" (fun _ -> 1));
  ignore (Srv.Cache.find_or_build c "b" (fun _ -> 2));
  ignore (Srv.Cache.find_opt c "a");
  (* "b" is now the least recently used; inserting "c" evicts it *)
  ignore (Srv.Cache.find_or_build c "c" (fun _ -> 3));
  Alcotest.(check int) "size bounded" 2 (Srv.Cache.size c);
  Alcotest.(check (option int)) "a kept" (Some 1) (Srv.Cache.find_opt c "a");
  Alcotest.(check (option int)) "b evicted" None (Srv.Cache.find_opt c "b");
  Alcotest.(check int) "one eviction" 1 (Srv.Cache.evictions c)

let test_cache_concurrent_builders () =
  let c = Srv.Cache.create ~capacity:8 "t" in
  let builds = Atomic.make 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Srv.Cache.find_or_build c "k" (fun _ ->
                Atomic.incr builds;
                7)))
  in
  let values = List.map Domain.join domains in
  List.iter (fun v -> Alcotest.(check int) "same value" 7 v) values;
  Alcotest.(check bool)
    "at least one build, no corruption" true
    (Atomic.get builds >= 1);
  Alcotest.(check int) "one entry" 1 (Srv.Cache.size c)

(* --- pool ---------------------------------------------------------------- *)

let test_pool_runs_jobs () =
  let pool = Srv.Pool.create ~domains:2 ~queue_capacity:16 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 10 do
    let ok =
      Srv.Pool.submit pool ~expired:ignore (fun () -> Atomic.incr hits)
    in
    Alcotest.(check bool) "accepted" true ok
  done;
  Srv.Pool.stop pool;
  Alcotest.(check int) "all ran before stop returned" 10 (Atomic.get hits)

let test_pool_saturation_rejects () =
  let pool = Srv.Pool.create ~domains:1 ~queue_capacity:2 () in
  let release = Atomic.make false in
  let block () = while not (Atomic.get release) do Domain.cpu_relax () done in
  (* one job occupies the worker; two fill the queue; the next must bounce *)
  Alcotest.(check bool)
    "worker busy" true
    (Srv.Pool.submit pool ~expired:ignore block);
  (* wait until the worker has actually dequeued the blocking job *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Srv.Pool.queue_length pool > 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool)
    "queued 1" true
    (Srv.Pool.submit pool ~expired:ignore ignore);
  Alcotest.(check bool)
    "queued 2" true
    (Srv.Pool.submit pool ~expired:ignore ignore);
  Alcotest.(check bool)
    "queue full rejects" false
    (Srv.Pool.submit pool ~expired:ignore ignore);
  let _, rejected, _, _, _ = Srv.Pool.counters pool in
  Alcotest.(check int) "rejection counted" 1 rejected;
  Atomic.set release true;
  Srv.Pool.stop pool

let test_pool_expired_jobs () =
  let pool = Srv.Pool.create ~domains:1 ~queue_capacity:8 () in
  let ran = Atomic.make false in
  let expired = Atomic.make false in
  let ok =
    Srv.Pool.submit pool
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~expired:(fun () -> Atomic.set expired true)
      (fun () -> Atomic.set ran true)
  in
  Alcotest.(check bool) "accepted" true ok;
  Srv.Pool.stop pool;
  Alcotest.(check bool) "body skipped" false (Atomic.get ran);
  Alcotest.(check bool) "expired callback ran" true (Atomic.get expired)

(* --- concurrent reads of a quiescent fact store -------------------------- *)

let test_database_concurrent_lookup () =
  let db = V.Database.create () in
  let n = 2000 in
  for i = 0 to n - 1 do
    ignore
      (V.Database.add db "p"
         [|
           Vadasa_base.Value.Int (i mod 17);
           Vadasa_base.Value.Str (Printf.sprintf "s%d" (i mod 5));
           Vadasa_base.Value.Int i;
         |])
  done;
  (* sequential ground truth, on indexes built by this domain *)
  let expected pos v = V.Database.lookup db "p" ~pos v in
  let truth0 = expected 0 (Vadasa_base.Value.Int 3) in
  let truth1 = expected 1 (Vadasa_base.Value.Str "s2") in
  (* a fresh store: the hammer builds indexes concurrently from scratch *)
  let db2 = V.Database.create () in
  V.Database.iter_pred db "p" (fun fact ->
      ignore (V.Database.add db2 "p" (Array.copy fact)));
  let errors = Atomic.make 0 in
  let domains =
    List.init 6 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              let r0 = V.Database.lookup db2 "p" ~pos:0 (Vadasa_base.Value.Int 3) in
              let r1 =
                V.Database.lookup db2 "p" ~pos:1 (Vadasa_base.Value.Str "s2")
              in
              if r0 <> truth0 || r1 <> truth1 then Atomic.incr errors;
              (* vary which position each domain touches first *)
              ignore
                (V.Database.lookup db2 "p" ~pos:(d mod 3)
                   (V.Database.nth db2 "p" (d * 7)).(d mod 3))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get errors)

(* --- tiny HTTP client for the e2e tests ---------------------------------- *)

(* Full variant: also returns the raw header block, for tests that
   assert on response headers. *)
let http_call_full ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Buffer.create (String.length body + 256) in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        (("host", "localhost") :: headers);
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n\r\n" (String.length body));
      Buffer.add_string buf body;
      let raw = Buffer.to_bytes buf in
      let off = ref 0 in
      while !off < Bytes.length raw do
        off := !off + Unix.write fd raw !off (Bytes.length raw - !off)
      done;
      (* the server always closes: read to EOF *)
      let resp = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes resp chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents resp in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let head, body =
        match Astring_contains.find_sub raw "\r\n\r\n" with
        | Some i ->
          ( String.sub raw 0 i,
            String.sub raw (i + 4) (String.length raw - i - 4) )
        | None -> (raw, "")
      in
      (status, head, body))

let http_call ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let status, _head, body =
    http_call_full ~port ~meth ~target ~headers ~body ()
  in
  (status, body)

(* --- end-to-end ----------------------------------------------------------- *)

let figure6_csv () =
  (* A scaled-down Figure 6 dataset (R6A4U shape, ~300 tuples). *)
  let md = D.Suite.load ~scale:0.05 "R6A4U" in
  (R.Csv.write_string (S.Microdata.relation md), S.Microdata.name md)

let with_server ?config ?router k =
  let config =
    match config with
    | Some c -> c
    | None ->
      {
        Srv.Server.default_config with
        Srv.Server.port = 0;
        domains = 4;
        request_timeout = 60.0;
      }
  in
  let handlers = Srv.Handlers.create () in
  let server = Srv.Server.create ~config ?router handlers in
  Srv.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Srv.Server.shutdown server;
      Srv.Handlers.shutdown handlers)
    (fun () -> k server (Srv.Server.port server))

let test_e2e_concurrent_risk () =
  let csv, name = figure6_csv () in
  (* What the CLI's [risk --json] prints for this input: same codec. *)
  let expected =
    let payload =
      {
        Srv.Codec.csv;
        options = { Srv.Codec.default_options with Srv.Codec.name };
      }
    in
    let md =
      match Srv.Codec.microdata_of_payload payload with
      | Ok md -> md
      | Error e ->
        Alcotest.failf "categorization failed: %s" (Vadasa_base.Error.to_string e)
    in
    let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
    Srv.Codec.risk_report_string ~threshold:0.5 md report
  in
  with_server (fun _server port ->
      let target = "/v1/risk?name=" ^ name in
      let clients =
        List.init 64 (fun _ ->
            Domain.spawn (fun () ->
                http_call ~port ~meth:"POST" ~target
                  ~headers:[ ("content-type", "text/csv") ]
                  ~body:csv ()))
      in
      let results = List.map Domain.join clients in
      List.iteri
        (fun i (status, body) ->
          if status <> 200 then Alcotest.failf "client %d: status %d" i status;
          if not (String.equal body expected) then
            Alcotest.failf "client %d: response not byte-identical" i)
        results;
      (* the dataset cache collapsed 64 identical bodies into one build *)
      let handlers = Srv.Server.handlers _server in
      Alcotest.(check int)
        "one dataset cached" 1
        (Srv.Cache.size (Srv.Handlers.datasets handlers)))

let test_e2e_program_cache_hit () =
  let csv, name = figure6_csv () in
  with_server (fun server port ->
      let target = "/v1/reason?name=" ^ name in
      let call () =
        http_call ~port ~meth:"POST" ~target
          ~headers:[ ("content-type", "text/csv") ]
          ~body:csv ()
      in
      let status1, body1 = call () in
      Alcotest.(check int) "first 200" 200 status1;
      Alcotest.(check bool)
        "first misses" true
        (Astring_contains.contains body1 "\"program_cache_hit\": false");
      let status2, body2 = call () in
      Alcotest.(check int) "second 200" 200 status2;
      Alcotest.(check bool)
        "second hits" true
        (Astring_contains.contains body2 "\"program_cache_hit\": true");
      let handlers = Srv.Server.handlers server in
      Alcotest.(check int)
        "hit counted" 1
        (Srv.Cache.hits (Srv.Handlers.programs handlers));
      (* the hit is visible in /metrics *)
      let status, metrics = http_call ~port ~meth:"GET" ~target:"/metrics" () in
      Alcotest.(check int) "metrics 200" 200 status;
      match Json.of_string metrics with
      | Error m -> Alcotest.failf "metrics is JSON: %s" m
      | Ok json ->
        let hits =
          Option.bind (Json.member "caches" json) (fun c ->
              Option.bind (Json.member "programs" c) (Json.member "hits"))
          |> Fun.flip Option.bind Json.to_int_opt
        in
        Alcotest.(check (option int)) "metrics shows the hit" (Some 1) hits)

let test_e2e_error_statuses () =
  with_server (fun _server port ->
      let status, _ = http_call ~port ~meth:"GET" ~target:"/healthz" () in
      Alcotest.(check int) "healthz" 200 status;
      let status, _ = http_call ~port ~meth:"GET" ~target:"/nope" () in
      Alcotest.(check int) "404" 404 status;
      let status, _ = http_call ~port ~meth:"PUT" ~target:"/v1/risk" () in
      Alcotest.(check int) "405" 405 status;
      let status, _ =
        http_call ~port ~meth:"POST" ~target:"/v1/risk"
          ~headers:[ ("content-type", "application/json") ]
          ~body:"{\"nope\"" ()
      in
      Alcotest.(check int) "bad JSON 400" 400 status;
      let status, body =
        http_call ~port ~meth:"POST" ~target:"/v1/risk"
          ~headers:[ ("content-type", "text/csv") ]
          ~body:"a,b\n1\n" ()
      in
      (* ragged CSV is a malformed input envelope: Parse category, 400 *)
      Alcotest.(check int) "ragged CSV 400" 400 status;
      Alcotest.(check bool)
        "carries the error code" true
        (Astring_contains.contains body "csv.ragged_row"))

let test_e2e_oversized_413 () =
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 1;
      max_body_bytes = 64;
    }
  in
  with_server ~config (fun _server port ->
      let status, _ =
        http_call ~port ~meth:"POST" ~target:"/v1/risk"
          ~headers:[ ("content-type", "text/csv") ]
          ~body:(String.make 1000 'x') ()
      in
      Alcotest.(check int) "413" 413 status)

let test_e2e_pool_saturation_503 () =
  (* One worker, one queue slot, and a route that blocks until released:
     the third concurrent request must be answered 503 by the accept
     loop itself. *)
  let release = Atomic.make false in
  let entered = Atomic.make 0 in
  let blocking _req =
    Atomic.incr entered;
    while not (Atomic.get release) do Domain.cpu_relax () done;
    Http.response ~status:200 "unblocked"
  in
  let handlers = Srv.Handlers.create () in
  let router =
    Srv.Router.add
      (Srv.Handlers.router handlers)
      ~meth:Http.GET ~path:"/block" blocking
  in
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 1;
      queue_capacity = 1;
      request_timeout = 60.0;
    }
  in
  let server = Srv.Server.create ~config ~router handlers in
  Srv.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Srv.Server.shutdown server)
    (fun () ->
      let port = Srv.Server.port server in
      let fire () =
        Domain.spawn (fun () ->
            http_call ~port ~meth:"GET" ~target:"/block" ())
      in
      let c1 = fire () in
      (* wait until the worker is actually inside the handler *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get entered = 0 && Unix.gettimeofday () < deadline do
        Domain.cpu_relax ()
      done;
      Alcotest.(check int) "worker entered" 1 (Atomic.get entered);
      let c2 = fire () in
      (* give the accept loop a moment to queue the second connection *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        Srv.Pool.queue_length (Srv.Server.pool server) < 1
        && Unix.gettimeofday () < deadline
      do
        Domain.cpu_relax ()
      done;
      let status3, body3 = http_call ~port ~meth:"GET" ~target:"/block" () in
      Alcotest.(check int) "saturated: 503" 503 status3;
      Alcotest.(check bool)
        "saturation is explained" true
        (Astring_contains.contains body3 "saturated");
      Atomic.set release true;
      let status1, _ = Domain.join c1 in
      let status2, _ = Domain.join c2 in
      Alcotest.(check int) "first unblocked" 200 status1;
      Alcotest.(check int) "queued one served" 200 status2)

let test_e2e_request_id_round_trip () =
  let module T = Vadasa_telemetry.Telemetry in
  let lock = Mutex.create () in
  let lines = ref [] in
  let sink line =
    Mutex.lock lock;
    lines := line :: !lines;
    Mutex.unlock lock
  in
  let snapshot () =
    Mutex.lock lock;
    let l = !lines in
    Mutex.unlock lock;
    l
  in
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 2;
      request_timeout = 60.0;
      access_log = Some sink;
      trace_sample = Some 1;
    }
  in
  let was_enabled = T.enabled () in
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () -> T.set_enabled was_enabled)
    (fun () ->
      with_server ~config (fun _server port ->
          let status, head, _body =
            http_call_full ~port ~meth:"GET" ~target:"/healthz"
              ~headers:[ ("x-vadasa-request-id", "test-id-123") ]
              ()
          in
          Alcotest.(check int) "200" 200 status;
          Alcotest.(check bool)
            "request id echoed in the response" true
            (Astring_contains.contains (String.lowercase_ascii head)
               "x-vadasa-request-id: test-id-123");
          (* the log and trace lines land after the response is written *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            List.length (snapshot ()) < 2 && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.01
          done;
          let captured = snapshot () in
          let has pred = List.exists pred captured in
          let contains needle line = Astring_contains.contains line needle in
          Alcotest.(check bool)
            "access log carries request_id/endpoint/latency_ms" true
            (has (fun l ->
                 contains "test-id-123" l
                 && contains "latency_ms" l
                 && contains "endpoint" l));
          Alcotest.(check bool)
            "sampled trace carries the id and the root span" true
            (has (fun l ->
                 contains "test-id-123" l
                 && contains "http.request" l
                 && contains "\"trace\"" l))))

let test_e2e_metrics_content_negotiation () =
  with_server (fun _server port ->
      let status, head, body =
        http_call_full ~port ~meth:"GET" ~target:"/metrics"
          ~headers:[ ("accept", "text/plain; version=0.0.4") ]
          ()
      in
      Alcotest.(check int) "prometheus 200" 200 status;
      Alcotest.(check bool)
        "prometheus content type" true
        (Astring_contains.contains head "text/plain; version=0.0.4");
      Alcotest.(check bool)
        "exposition body" true
        (String.length body > 0 && body.[0] = '#');
      Alcotest.(check bool)
        "pool series present" true
        (Astring_contains.contains body "vadasa_pool_jobs_total");
      Alcotest.(check bool)
        "pool utilization gauges present" true
        (Astring_contains.contains body "vadasa_pool_utilization"
        && Astring_contains.contains body "vadasa_pool_busy_domains"
        && Astring_contains.contains body "vadasa_pool_domains");
      (* no Accept header: JSON stays the default *)
      let status, body = http_call ~port ~meth:"GET" ~target:"/metrics" () in
      Alcotest.(check int) "json 200" 200 status;
      Alcotest.(check bool)
        "json body" true
        (String.length body > 0 && body.[0] = '{'))

(* Accept-header negotiation is parsed, not substring-matched: q=0
   means "explicitly not acceptable", and media types are compared as
   whole tokens. *)
let test_accept_negotiation () =
  let wants accept =
    match
      parse (Printf.sprintf "GET /metrics HTTP/1.1\r\naccept: %s\r\n\r\n" accept)
    with
    | Ok req -> Srv.Prom.wants_prometheus req
    | Error _ -> Alcotest.fail "request should parse"
  in
  Alcotest.(check bool) "text/plain" true (wants "text/plain");
  Alcotest.(check bool)
    "versioned exposition" true
    (wants "text/plain; version=0.0.4");
  Alcotest.(check bool)
    "openmetrics" true
    (wants "application/openmetrics-text; version=1.0.0");
  Alcotest.(check bool)
    "second entry counts" true
    (wants "text/html, text/plain;q=0.5");
  Alcotest.(check bool)
    "q=0 is explicitly not acceptable" false
    (wants "text/html, text/plain;q=0");
  Alcotest.(check bool)
    "token match, not substring" false
    (wants "text/plain-extended");
  Alcotest.(check bool) "bare wildcard keeps JSON" false (wants "*/*")

(* Client-controlled paths must not grow the instrument set: requests
   to paths no route serves collapse into the single "unmatched"
   latency bucket instead of interning one histogram per path. *)
let test_e2e_unmatched_path_cardinality () =
  let module T = Vadasa_telemetry.Telemetry in
  let was_enabled = T.enabled () in
  T.set_enabled true;
  T.reset T.global;
  Fun.protect
    ~finally:(fun () -> T.set_enabled was_enabled)
    (fun () ->
      with_server (fun _server port ->
          List.iter
            (fun target ->
              let status, _ = http_call ~port ~meth:"GET" ~target () in
              Alcotest.(check int) "404" 404 status)
            [ "/no-such-path-1"; "/no-such-path-2"; "/probe/random" ];
          let status, _ = http_call ~port ~meth:"GET" ~target:"/healthz" () in
          Alcotest.(check int) "200" 200 status;
          (* the latency observation lands just after the response is
             written; poll until both series show up *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let capture () =
            List.map fst (T.Report.capture T.global).T.Report.histograms
          in
          let complete names =
            List.mem "http.latency.unmatched" names
            && List.mem "http.latency.GET healthz" names
          in
          while not (complete (capture ())) && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.01
          done;
          let names = capture () in
          Alcotest.(check bool)
            "unmatched paths collapse into one bucket" true
            (List.mem "http.latency.unmatched" names);
          Alcotest.(check bool)
            "known endpoint keyed by its route" true
            (List.mem "http.latency.GET healthz" names);
          Alcotest.(check bool)
            "no client-controlled name interned" false
            (List.exists
               (fun n ->
                 Astring_contains.contains n "no-such-path"
                 || Astring_contains.contains n "probe")
               names)))

(* Generated request ids must not skew --trace-sample: the sampling
   counter advances exactly once per request, so 4 requests at N=2
   yield exactly 2 trace lines. *)
let test_e2e_trace_sample_rate () =
  let module T = Vadasa_telemetry.Telemetry in
  let lock = Mutex.create () in
  let lines = ref [] in
  let sink line =
    Mutex.lock lock;
    lines := line :: !lines;
    Mutex.unlock lock
  in
  let count pred =
    Mutex.lock lock;
    let l = !lines in
    Mutex.unlock lock;
    List.length (List.filter pred l)
  in
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 1;
      request_timeout = 60.0;
      access_log = Some sink;
      trace_sample = Some 2;
    }
  in
  let was_enabled = T.enabled () in
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () -> T.set_enabled was_enabled)
    (fun () ->
      with_server ~config (fun _server port ->
          for _ = 1 to 4 do
            let status, _ = http_call ~port ~meth:"GET" ~target:"/healthz" () in
            Alcotest.(check int) "200" 200 status
          done;
          (* trace lines are emitted before each access-log line, so
             once all 4 log lines are in, so are the traces *)
          let logs () =
            count (fun l -> Astring_contains.contains l "\"status\"")
          in
          let deadline = Unix.gettimeofday () +. 5.0 in
          while logs () < 4 && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.01
          done;
          Alcotest.(check int) "4 access-log lines" 4 (logs ());
          Alcotest.(check int)
            "exactly every 2nd request sampled" 2
            (count (fun l -> Astring_contains.contains l "\"trace\""))))

(* --slow-ms must dump a span tree for a slow request even with trace
   sampling off, and the line must carry the slow marker. *)
let test_e2e_slow_request_logged () =
  let module T = Vadasa_telemetry.Telemetry in
  let lock = Mutex.create () in
  let lines = ref [] in
  let sink line =
    Mutex.lock lock;
    lines := line :: !lines;
    Mutex.unlock lock
  in
  let snapshot () =
    Mutex.lock lock;
    let l = !lines in
    Mutex.unlock lock;
    l
  in
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 1;
      request_timeout = 60.0;
      access_log = Some sink;
      trace_sample = None;
      slow_ms = Some 1;
    }
  in
  let was_enabled = T.enabled () in
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () -> T.set_enabled was_enabled)
    (fun () ->
      with_server ~config (fun _server port ->
          (* a full risk estimation comfortably exceeds 1 ms *)
          let csv, name = figure6_csv () in
          let status, _ =
            http_call ~port ~meth:"POST" ~target:("/v1/risk?name=" ^ name)
              ~headers:[ ("content-type", "text/csv") ]
              ~body:csv ()
          in
          Alcotest.(check int) "risk 200" 200 status;
          let deadline = Unix.gettimeofday () +. 5.0 in
          let slow_line () =
            List.find_opt
              (fun l -> Astring_contains.contains l "\"slow\":true")
              (snapshot ())
          in
          while slow_line () = None && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.01
          done;
          match slow_line () with
          | None -> Alcotest.fail "no slow trace line emitted"
          | Some line ->
            Alcotest.(check bool)
              "slow line carries the span tree and latency" true
              (Astring_contains.contains line "\"trace\""
              && Astring_contains.contains line "latency_ms"
              && Astring_contains.contains line "http.request")))

(* The /v1/explain contract: the response body is the exact string the
   CLI's [explain --json] prints — both go through
   [Codec.explain_string] over the same provenance tree. *)
let explain_program =
  {|@label("base_case").
path(X, Y) :- edge(X, Y).
@label("step").
path(X, Y) :- edge(X, Z), path(Z, Y).
edge(a, b). edge(b, c).
@output("path").
|}

let test_e2e_explain_byte_identical () =
  let expected =
    let program = V.Parser.parse explain_program in
    let engine = V.Engine.create program in
    Fun.protect
      ~finally:(fun () -> V.Engine.shutdown engine)
      (fun () ->
        V.Engine.run engine;
        match
          V.Engine.explain engine "path"
            [| Vadasa_base.Value.Str "a"; Vadasa_base.Value.Str "c" |]
        with
        | Some tree -> Srv.Codec.explain_string tree
        | None -> Alcotest.fail "path(a, c) should be derivable")
  in
  with_server (fun _server port ->
      let body =
        Json.to_string
          (Json.Obj
             [
               ("program", Json.Str explain_program);
               ("fact", Json.Str "path(a, c)");
             ])
      in
      let status, resp =
        http_call ~port ~meth:"POST" ~target:"/v1/explain"
          ~headers:[ ("content-type", "application/json") ]
          ~body ()
      in
      Alcotest.(check int) "explain 200" 200 status;
      Alcotest.(check string) "byte-identical to the CLI rendering" expected
        resp)

let test_e2e_explain_not_found_422 () =
  with_server (fun _server port ->
      let body =
        Json.to_string
          (Json.Obj
             [
               ("program", Json.Str explain_program);
               ("fact", Json.Str "path(c, a)");
             ])
      in
      let status, resp =
        http_call ~port ~meth:"POST" ~target:"/v1/explain"
          ~headers:[ ("content-type", "application/json") ]
          ~body ()
      in
      Alcotest.(check int) "fact the chase never derived: 422" 422 status;
      Alcotest.(check bool)
        "carries the typed code" true
        (Astring_contains.contains resp "fact.not_found");
      (* a fact that does not even parse is a malformed request: 400 *)
      let body =
        Json.to_string
          (Json.Obj
             [
               ("program", Json.Str explain_program);
               ("fact", Json.Str "path(X, ");
             ])
      in
      let status, resp =
        http_call ~port ~meth:"POST" ~target:"/v1/explain"
          ~headers:[ ("content-type", "application/json") ]
          ~body ()
      in
      Alcotest.(check int) "unparsable fact: 400" 400 status;
      Alcotest.(check bool)
        "carries fact.invalid" true
        (Astring_contains.contains resp "fact.invalid"))

let test_e2e_anonymize_audit_embedded () =
  let csv, name = figure6_csv () in
  with_server (fun _server port ->
      let call target =
        http_call ~port ~meth:"POST" ~target
          ~headers:[ ("content-type", "text/csv") ]
          ~body:csv ()
      in
      (* without the opt-in, no trail in the response *)
      let status, body = call ("/v1/anonymize?name=" ^ name) in
      Alcotest.(check int) "anonymize 200" 200 status;
      Alcotest.(check bool)
        "no audit by default" false
        (Astring_contains.contains body "\"audit\"");
      let status, body = call ("/v1/anonymize?name=" ^ name ^ "&audit=true") in
      Alcotest.(check int) "audited anonymize 200" 200 status;
      match Json.of_string body with
      | Error m -> Alcotest.failf "response is JSON: %s" m
      | Ok json ->
        let rounds =
          Json.member "rounds" json
          |> Fun.flip Option.bind Json.to_int_opt
          |> Option.value ~default:0
        in
        Alcotest.(check bool) "cycle ran rounds" true (rounds > 0);
        (match Json.member "audit" json with
        | Some (Json.List events) ->
          Alcotest.(check int) "one audit event per round" rounds
            (List.length events);
          List.iter
            (fun e ->
              Alcotest.(check bool)
                "event is an object with a round" true
                (match e with
                | Json.Obj fields -> List.mem_assoc "round" fields
                | _ -> false))
            events
        | _ -> Alcotest.fail "audit trail missing from the response"))

(* --- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "server"
    [
      ( "http",
        [
          Alcotest.test_case "parse GET with query" `Quick test_parse_get;
          Alcotest.test_case "parse POST body" `Quick test_parse_post_body;
          Alcotest.test_case "byte-at-a-time reader" `Quick
            test_parse_body_split_across_reads;
          Alcotest.test_case "oversized body 413" `Quick test_oversized_body_413;
          Alcotest.test_case "malformed 400" `Quick test_malformed_400;
          Alcotest.test_case "chunked 501" `Quick test_chunked_501;
          Alcotest.test_case "header block limit" `Quick test_header_block_limit;
          Alcotest.test_case "response wire form" `Quick test_response_round_trip;
          Alcotest.test_case "percent decode" `Quick test_percent_decode;
        ] );
      ( "router",
        [ Alcotest.test_case "dispatch/404/405" `Quick test_router_dispatch ] );
      ( "cache",
        [
          Alcotest.test_case "hit and miss counters" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "concurrent builders" `Quick
            test_cache_concurrent_builders;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs jobs, drains on stop" `Quick
            test_pool_runs_jobs;
          Alcotest.test_case "saturation rejects" `Quick
            test_pool_saturation_rejects;
          Alcotest.test_case "queued past deadline expires" `Quick
            test_pool_expired_jobs;
        ] );
      ( "database",
        [
          Alcotest.test_case "concurrent lookup on quiescent store" `Quick
            test_database_concurrent_lookup;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "64 concurrent risk, byte-identical" `Slow
            test_e2e_concurrent_risk;
          Alcotest.test_case "program cache hit on repeat reason" `Slow
            test_e2e_program_cache_hit;
          Alcotest.test_case "status codes" `Quick test_e2e_error_statuses;
          Alcotest.test_case "oversized body over the wire" `Quick
            test_e2e_oversized_413;
          Alcotest.test_case "pool saturation answers 503" `Slow
            test_e2e_pool_saturation_503;
          Alcotest.test_case "request id round trip" `Quick
            test_e2e_request_id_round_trip;
          Alcotest.test_case "metrics content negotiation" `Quick
            test_e2e_metrics_content_negotiation;
          Alcotest.test_case "accept header parsing" `Quick
            test_accept_negotiation;
          Alcotest.test_case "unmatched paths share one bucket" `Quick
            test_e2e_unmatched_path_cardinality;
          Alcotest.test_case "trace sample rate exact" `Quick
            test_e2e_trace_sample_rate;
          Alcotest.test_case "slow request always traced" `Quick
            test_e2e_slow_request_logged;
          Alcotest.test_case "explain byte-identical to CLI" `Quick
            test_e2e_explain_byte_identical;
          Alcotest.test_case "explain missing fact 422" `Quick
            test_e2e_explain_not_found_422;
          Alcotest.test_case "anonymize embeds audit trail" `Quick
            test_e2e_anonymize_audit_embedded;
        ] );
    ]
