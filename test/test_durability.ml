(* Tests for the durability layer behind [serve --data-dir] and the
   async jobs API: the CRC-framed journal (group commit, torn-tail
   tolerance, fault rollback), the write-ahead persist store (snapshot
   + replay, commits aborted by journal faults leave no state), the
   crash-safe dataset registry (recovered risk reports byte-identical,
   4-domain concurrent appends lose nothing), the /v1/jobs surface
   (admission gates, retry, cancel, restart resume) and the retry
   policy's exact schedule. *)

module Srv = Vadasa_server
module Journal = Srv.Journal
module Persist = Srv.Persist
module Registry = Srv.Registry
module Jobs = Srv.Jobs
module Codec = Srv.Codec
module E = Vadasa_base.Error
module Json = Vadasa_base.Json
module F = Vadasa_resilience.Faultpoint
module Retry = Vadasa_resilience.Retry
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen

(* --- fixtures and small helpers ------------------------------------------- *)

let tmp_dir () =
  let base = Filename.temp_file "vadasa-durability" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let file_size path = (Unix.stat path).Unix.st_size

let figure6_csv =
  lazy
    (R.Csv.write_string (S.Microdata.relation (D.Suite.load ~scale:0.05 "R6A4U")))

(* header + rows[lo, hi) as a standalone CSV document *)
let csv_slice csv lo hi =
  match String.split_on_char '\n' csv with
  | header :: rows ->
    let rows = List.filter (fun r -> r <> "") rows in
    let keep = List.filteri (fun i _ -> i >= lo && i < hi) rows in
    header ^ "\n" ^ String.concat "\n" keep ^ "\n"
  | [] -> assert false

let csv_rows csv =
  match String.split_on_char '\n' csv with
  | _ :: rows -> List.length (List.filter (fun r -> r <> "") rows)
  | [] -> 0

let md_of_csv csv =
  match
    Srv.Codec.microdata_of_payload
      { Srv.Codec.csv; options = Srv.Codec.default_options }
  with
  | Ok md -> md
  | Error e -> Alcotest.failf "microdata: %s" (E.to_string e)

let json_of body =
  match Json.of_string body with
  | Ok json -> json
  | Error m -> Alcotest.failf "body is JSON: %s (%s)" m body

let jstr json name =
  match Option.bind (Json.member name json) Json.to_string_opt with
  | Some v -> v
  | None -> Alcotest.failf "missing string field %s" name

let jint json name =
  match Option.bind (Json.member name json) Json.to_int_opt with
  | Some v -> v
  | None -> Alcotest.failf "missing int field %s" name

let jbool json name =
  match Option.bind (Json.member name json) Json.to_bool_opt with
  | Some v -> v
  | None -> Alcotest.failf "missing bool field %s" name

let error_code body =
  Option.bind (Json.member "error" (json_of body)) (fun e ->
      Option.bind (Json.member "code" e) Json.to_string_opt)

(* --- the journal ----------------------------------------------------------- *)

let test_journal_roundtrip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j" in
  let j = Journal.open_ ~path () in
  let big = String.make 5000 'x' in
  Alcotest.(check int) "seq 1" 1 (Journal.append j "alpha");
  Alcotest.(check int) "seq 2" 2 (Journal.append j "beta");
  Alcotest.(check int) "seq 3" 3 (Journal.append j big);
  Alcotest.(check int) "last_seq" 3 (Journal.last_seq j);
  Journal.close j;
  Journal.close j (* idempotent *);
  let scan = Journal.scan ~path in
  Alcotest.(check (list (pair int string)))
    "records"
    [ (1, "alpha"); (2, "beta"); (3, big) ]
    scan.Journal.records;
  Alcotest.(check int) "no torn tail" 0 scan.Journal.truncated_bytes;
  Alcotest.(check int) "next_seq" 4 scan.Journal.next_seq;
  (* reopening continues the sequence *)
  let j2 = Journal.open_ ~path () in
  Alcotest.(check int) "continues" 4 (Journal.append j2 "gamma");
  Journal.close j2;
  let scan = Journal.scan ~path in
  Alcotest.(check int) "4 records" 4 (List.length scan.Journal.records);
  (* a missing file is an empty journal, not an error *)
  let scan = Journal.scan ~path:(Filename.concat dir "absent") in
  Alcotest.(check int) "absent file" 0 (List.length scan.Journal.records);
  (* the frame checksum is the IEEE CRC-32 *)
  Alcotest.(check int) "crc of empty" 0 (Journal.crc32 "");
  Alcotest.(check bool)
    "crc discriminates" true
    (Journal.crc32 "alpha" <> Journal.crc32 "beta")

(* The torn-tail property: cut the journal file at EVERY byte boundary
   and the scan must yield exactly the records whose frames fit before
   the cut — a consistent prefix, never a crash, with the leftover
   counted as discarded. *)
let test_journal_torn_tail_every_byte () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j" in
  let payloads = [ "one"; "two"; String.make 40 'z' ] in
  let j = Journal.open_ ~path () in
  List.iter (fun p -> ignore (Journal.append j p)) payloads;
  Journal.close j;
  let raw = read_file path in
  let full = (Journal.scan ~path).Journal.records in
  Alcotest.(check int) "all three committed" 3 (List.length full);
  (* cumulative end offset of each frame: header (20 bytes) + payload *)
  let ends =
    List.rev
      (List.fold_left
         (fun acc p ->
           let prev = match acc with e :: _ -> e | [] -> 0 in
           (prev + 20 + String.length p) :: acc)
         [] payloads)
  in
  Alcotest.(check int) "frames cover the file" (String.length raw)
    (List.nth ends 2);
  let cut_path = Filename.concat dir "cut" in
  for cut = 0 to String.length raw do
    write_file cut_path (String.sub raw 0 cut);
    let scan = Journal.scan ~path:cut_path in
    let intact = List.length (List.filter (fun e -> e <= cut) ends) in
    let consumed = if intact = 0 then 0 else List.nth ends (intact - 1) in
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "prefix at cut %d" cut)
      (List.filteri (fun i _ -> i < intact) full)
      scan.Journal.records;
    Alcotest.(check int)
      (Printf.sprintf "discarded at cut %d" cut)
      (cut - consumed) scan.Journal.truncated_bytes
  done

let check_fault_code what expected f =
  match f () with
  | _ -> Alcotest.failf "%s: expected %s" what expected
  | exception E.Error e -> Alcotest.(check string) what expected e.E.code

(* A failed batch — injected write or fsync fault — rolls the file back
   to the pre-batch offset: the journal stays usable and the failed
   record leaves no bytes behind. *)
let test_journal_fault_rollback () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j" in
  F.reset ();
  Fun.protect ~finally:F.reset (fun () ->
      let j = Journal.open_ ~path () in
      ignore (Journal.append j "keep");
      let size0 = file_size path in
      (match F.arm "journal.write" F.Fail with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
      check_fault_code "write fault surfaces" "fault.journal.write" (fun () ->
          Journal.append j "lost");
      Alcotest.(check int) "write fault left no bytes" size0 (file_size path);
      F.reset ();
      (match F.arm "journal.fsync" F.Fail with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
      check_fault_code "fsync fault surfaces" "fault.journal.fsync" (fun () ->
          Journal.append j "lost2");
      Alcotest.(check int) "fsync fault left no bytes" size0 (file_size path);
      F.reset ();
      ignore (Journal.append j "second");
      Alcotest.(check bool)
        "failed batches counted" true
        ((Journal.counters j).Journal.errors >= 2);
      Journal.close j;
      let scan = Journal.scan ~path in
      Alcotest.(check (list string))
        "only the committed records" [ "keep"; "second" ]
        (List.map snd scan.Journal.records))

(* 4 domains hammer one journal: every append must come back committed
   exactly once, with distinct sequence numbers, and group commit means
   strictly fewer fsync batches than records when writers collide. *)
let test_journal_concurrent_appends () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j" in
  let j = Journal.open_ ~path () in
  let per_domain = 25 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.init per_domain (fun i ->
                Journal.append j (Printf.sprintf "d%d-%03d" d i))))
  in
  let seqs = List.concat_map Domain.join domains in
  let c = Journal.counters j in
  Journal.close j;
  Alcotest.(check int) "all committed" (4 * per_domain) (List.length seqs);
  Alcotest.(check int)
    "distinct seqs" (4 * per_domain)
    (List.length (List.sort_uniq compare seqs));
  Alcotest.(check int) "append counter" (4 * per_domain) c.Journal.appends;
  Alcotest.(check bool) "batched" true (c.Journal.batches <= c.Journal.appends);
  let scan = Journal.scan ~path in
  let expected =
    List.sort compare
      (List.concat_map
         (fun d ->
           List.init per_domain (fun i -> Printf.sprintf "d%d-%03d" d i))
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check (list string))
    "every record durable" expected
    (List.sort compare (List.map snd scan.Journal.records))

(* A torn tail is physically cut off the file at reopen, so records
   appended after a torn-tail restart land contiguously and survive the
   NEXT recovery too (appending after the corrupt bytes would strand
   them behind the CRC-scan stop). *)
let test_journal_torn_tail_truncated_on_reopen () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j" in
  let j = Journal.open_ ~path () in
  ignore (Journal.append j "alpha");
  ignore (Journal.append j "beta");
  Journal.close j;
  let intact = file_size path in
  (* crash mid-write: part of a frame lands after the committed records *)
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc "VJL1\x99\x99torn";
  close_out oc;
  Alcotest.(check bool) "scan discards the tail" true
    ((Journal.scan ~path).Journal.truncated_bytes > 0);
  let j2 = Journal.open_ ~path () in
  Alcotest.(check int) "file physically truncated" intact (file_size path);
  Alcotest.(check int) "sequence continues" 3 (Journal.append j2 "gamma");
  Journal.close j2;
  let scan = Journal.scan ~path in
  Alcotest.(check (list string))
    "post-restart record readable by the next recovery"
    [ "alpha"; "beta"; "gamma" ]
    (List.map snd scan.Journal.records);
  Alcotest.(check int) "no leftover garbage" 0 scan.Journal.truncated_bytes

(* --- the persist store ----------------------------------------------------- *)

(* A toy durable subsystem shaped like the real ones: the public
   mutator journals ahead via [commit], [apply] replays by re-running
   the mutator (a no-op commit during replay), [dump]/[restore] carry
   the full state through snapshots. *)
let toy_store dir =
  let state = ref [] in
  let p = Persist.open_ ~snapshot_every:1000 ~dir () in
  let add n =
    Persist.commit p
      ~record:(Json.Obj [ ("kind", Json.Str "toy.add"); ("n", Json.Int n) ])
      (fun commit_now ->
        commit_now ();
        state := n :: !state)
  in
  Persist.register p ~section:"toy" ~prefix:"toy."
    ~dump:(fun () -> Json.List (List.rev_map (fun n -> Json.Int n) !state))
    ~restore:(fun json ->
      state :=
        (match Option.bind (Json.to_list_opt json) (fun l -> Some l) with
        | Some l ->
          List.rev_map (fun v -> Option.value ~default:0 (Json.to_int_opt v)) l
        | None -> []))
    ~apply:(fun record ->
      match Option.bind (Json.member "n" record) Json.to_int_opt with
      | Some n -> add n
      | None -> ());
  (p, state, add)

let test_persist_commit_replay_snapshot () =
  let dir = tmp_dir () in
  F.reset ();
  Fun.protect ~finally:F.reset (fun () ->
      (* generation 1: three commits, then crash (no close, no snapshot) *)
      let _p1, s1, add1 = toy_store dir in
      add1 1;
      add1 2;
      add1 3;
      Alcotest.(check (list int)) "live state" [ 3; 2; 1 ] !s1;
      (* a journal fault aborts the commit with no state applied *)
      (match F.arm "journal.write" F.Fail with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
      check_fault_code "aborted commit" "fault.journal.write" (fun () -> add1 9);
      F.reset ();
      Alcotest.(check (list int)) "aborted commit left no state" [ 3; 2; 1 ] !s1;
      (* generation 2: replay the journal tail (no snapshot exists yet) *)
      let p2, s2, add2 = toy_store dir in
      Persist.recover p2;
      Alcotest.(check (list int)) "journal replay" [ 3; 2; 1 ] !s2;
      let r = Persist.recovery p2 in
      Alcotest.(check int) "replayed records" 3 r.Persist.replayed;
      Alcotest.(check int) "none skipped" 0 r.Persist.skipped;
      (* snapshot captures the records; the journal is truncated *)
      Persist.snapshot p2;
      Alcotest.(check int) "journal truncated" 0
        (file_size (Filename.concat dir "registry.journal"));
      add2 4;
      Persist.close p2;
      (* generation 3: snapshot restore + (empty) tail *)
      let p3, s3, _ = toy_store dir in
      Persist.recover p3;
      Alcotest.(check (list int)) "snapshot restore" [ 4; 3; 2; 1 ] !s3;
      Persist.close p3)

(* Sequence numbers must never restart below the snapshot's last_seq:
   commits made by a process that booted from a snapshot (so with an
   empty journal) would otherwise be numbered from 1 again, and the
   NEXT recovery's [seq > snapshot.last_seq] guard would silently drop
   them — acknowledged, fsynced records lost. *)
let test_persist_seq_continues_after_snapshot () =
  let dir = tmp_dir () in
  (* generation 1: three commits, captured by a snapshot (last_seq 3,
     journal truncated), clean close *)
  let p1, _, add1 = toy_store dir in
  add1 1;
  add1 2;
  add1 3;
  Persist.close p1;
  Alcotest.(check int) "journal empty after snapshot" 0
    (file_size (Filename.concat dir "registry.journal"));
  (* generation 2: boots from the snapshot, commits two more, crashes *)
  let p2, s2, add2 = toy_store dir in
  Persist.recover p2;
  Alcotest.(check (list int)) "snapshot restore" [ 3; 2; 1 ] !s2;
  add2 4;
  add2 5;
  Alcotest.(check bool) "sequences continue past the snapshot" true
    (Journal.last_seq (Persist.journal p2) > 3);
  (* crash: close the journal directly — no shutdown snapshot *)
  Journal.close (Persist.journal p2);
  (* generation 3: both post-snapshot commits must replay *)
  let p3, s3, _ = toy_store dir in
  Persist.recover p3;
  Alcotest.(check (list int))
    "post-snapshot commits recovered" [ 5; 4; 3; 2; 1 ] !s3;
  Alcotest.(check int) "both replayed" 2 (Persist.recovery p3).Persist.replayed;
  Persist.close p3

(* --- the crash-safe registry ---------------------------------------------- *)

let default_measure () =
  match Codec.measure_of_options Codec.default_options with
  | Ok m -> m
  | Error e -> Alcotest.failf "measure: %s" (E.to_string e)

let put_base registry csv =
  let outcome =
    Registry.put registry ~id:"d"
      ~digest:(Digest.to_hex (Digest.string csv))
      ~bytes:(String.length csv) ~options:Codec.default_options
      ~measure:(default_measure ()) ~compiled:None (md_of_csv csv)
  in
  outcome.Registry.entry

let risk_string entry =
  Codec.risk_report_string ~threshold:Codec.default_options.Codec.threshold
    (Registry.entry_md entry)
    (Registry.entry_report entry)

(* put + two appends, crash (journal only), recover: the union CSV and
   the maintained risk report come back byte-identical — and again
   after a clean close writes a snapshot. *)
let test_registry_crash_recover_identical () =
  let csv = Lazy.force figure6_csv in
  let n = csv_rows csv in
  let base = csv_slice csv 0 (2 * n / 3) in
  let d1 = csv_slice csv (2 * n / 3) (5 * n / 6) in
  let d2 = csv_slice csv (5 * n / 6) n in
  let dir = tmp_dir () in
  let p1 = Persist.open_ ~snapshot_every:100000 ~dir () in
  let reg1 = Registry.create ~persist:p1 () in
  let e1 = put_base reg1 base in
  ignore (Registry.append reg1 e1 ~csv:d1);
  ignore (Registry.append reg1 e1 ~csv:d2);
  let csv1 = Registry.entry_csv e1 in
  let risk1 = risk_string e1 in
  Alcotest.(check int) "all rows live" n (csv_rows csv1);
  (* crash: p1 is dropped without close — only the journal survives *)
  let p2 = Persist.open_ ~dir () in
  let reg2 = Registry.create ~persist:p2 () in
  Persist.recover p2;
  let e2 = Registry.get reg2 "d" in
  Alcotest.(check string) "union CSV recovered byte-identical" csv1
    (Registry.entry_csv e2);
  Alcotest.(check string) "risk report recovered byte-identical" risk1
    (risk_string e2);
  (* a recovered registry keeps absorbing deltas incrementally *)
  ignore (Registry.append reg2 e2 ~csv:d1);
  Alcotest.(check int) "post-recovery append" (n + csv_rows d1)
    (csv_rows (Registry.entry_csv e2));
  (* clean close writes a snapshot; recovery then restores from it *)
  Persist.close p2;
  let p3 = Persist.open_ ~dir () in
  let reg3 = Registry.create ~persist:p3 () in
  Persist.recover p3;
  let r = Persist.recovery p3 in
  Alcotest.(check int) "snapshot carried everything" 0 r.Persist.replayed;
  let e3 = Registry.get reg3 "d" in
  Alcotest.(check string) "snapshot restore byte-identical"
    (Registry.entry_csv e2) (Registry.entry_csv e3);
  Persist.close p3

(* 4 domains append disjoint deltas to one durable dataset: no delta
   may be lost, the maintained report must equal the from-scratch
   estimate a recovery performs, and the journal must replay to the
   exact same union. *)
let test_registry_concurrent_append_hammer () =
  let csv = Lazy.force figure6_csv in
  let n = csv_rows csv in
  let base_rows = n / 3 in
  let base = csv_slice csv 0 base_rows in
  let deltas =
    (* 8 disjoint slices covering rows [base_rows, n) *)
    let step = (n - base_rows + 7) / 8 in
    List.init 8 (fun i ->
        let lo = base_rows + (i * step) in
        let hi = min n (lo + step) in
        csv_slice csv lo hi)
    |> List.filter (fun d -> csv_rows d > 0)
  in
  let dir = tmp_dir () in
  let p1 = Persist.open_ ~snapshot_every:100000 ~dir () in
  let reg1 = Registry.create ~persist:p1 () in
  let entry = put_base reg1 base in
  let chunks =
    (* partition the deltas among 4 domains *)
    List.init 4 (fun d ->
        List.filteri (fun i _ -> i mod 4 = d) deltas)
  in
  let domains =
    List.map
      (fun mine ->
        Domain.spawn (fun () ->
            List.iter (fun csv -> ignore (Registry.append reg1 entry ~csv)) mine))
      chunks
  in
  List.iter Domain.join domains;
  let csv1 = Registry.entry_csv entry in
  Alcotest.(check int) "no delta lost" n (csv_rows csv1);
  (* recovery rebuilds the scorer from scratch over the union — equal
     bytes means the concurrent incremental maintenance was exact *)
  let p2 = Persist.open_ ~dir () in
  let reg2 = Registry.create ~persist:p2 () in
  Persist.recover p2;
  let e2 = Registry.get reg2 "d" in
  Alcotest.(check string) "union replayed byte-identical" csv1
    (Registry.entry_csv e2);
  Alcotest.(check string) "incremental report equals from-scratch"
    (risk_string entry) (risk_string e2);
  Persist.close p2

(* --- the /v1/jobs surface over HTTP ---------------------------------------- *)

let http_call_full ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Buffer.create (String.length body + 256) in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        (("host", "localhost") :: headers);
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n\r\n" (String.length body));
      Buffer.add_string buf body;
      let raw = Buffer.to_bytes buf in
      let off = ref 0 in
      while !off < Bytes.length raw do
        off := !off + Unix.write fd raw !off (Bytes.length raw - !off)
      done;
      let resp = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes resp chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents resp in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let head, body =
        match Astring_contains.find_sub raw "\r\n\r\n" with
        | Some i ->
          ( String.sub raw 0 i,
            String.sub raw (i + 4) (String.length raw - i - 4) )
        | None -> (raw, "")
      in
      (status, String.lowercase_ascii head, body))

let http_call ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let status, _head, body =
    http_call_full ~port ~meth ~target ~headers ~body ()
  in
  (status, body)

let start_server ?persist ?job_domains ?tenant_quota ?tenant_rate ?tenant_burst
    () =
  let handlers =
    Srv.Handlers.create ?persist ?job_domains ?tenant_quota ?tenant_rate
      ?tenant_burst ()
  in
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 2;
      request_timeout = 60.0;
    }
  in
  let server = Srv.Server.create ~config handlers in
  Srv.Server.start server;
  (handlers, server, Srv.Server.port server)

let with_jobs_server ?persist ?job_domains ?tenant_quota ?tenant_rate
    ?tenant_burst k =
  let handlers, server, port =
    start_server ?persist ?job_domains ?tenant_quota ?tenant_rate ?tenant_burst
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Srv.Server.shutdown server;
      Srv.Handlers.shutdown handlers)
    (fun () -> k handlers port)

let put_dataset ~port ~id csv =
  let status, _ =
    http_call ~port ~meth:"PUT" ~target:("/v1/datasets/" ^ id) ~body:csv ()
  in
  Alcotest.(check int) ("PUT " ^ id) 201 status

let submit_job ?(headers = []) ~port ~dataset ~op () =
  http_call ~port ~meth:"POST" ~target:"/v1/jobs" ~headers
    ~body:(Printf.sprintf "{\"dataset\": %S, \"op\": %S}" dataset op)
    ()

(* poll GET /v1/jobs/{id} until it reaches a terminal state *)
let wait_job ~port id =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    let status, body =
      http_call ~port ~meth:"GET" ~target:("/v1/jobs/" ^ id) ()
    in
    Alcotest.(check int) ("GET " ^ id) 200 status;
    let json = json_of body in
    match jstr json "state" with
    | "queued" | "running" when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.05;
      go ()
    | "queued" | "running" -> Alcotest.failf "%s never settled" id
    | _ -> json
  in
  go ()

let test_jobs_e2e_http () =
  let csv = Lazy.force figure6_csv in
  with_jobs_server (fun _handlers port ->
      put_dataset ~port ~id:"fig6" csv;
      let status, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
      Alcotest.(check int) "202 accepted" 202 status;
      let id = jstr (json_of body) "id" in
      let json = wait_job ~port id in
      Alcotest.(check string) "done" "done" (jstr json "state");
      Alcotest.(check int) "one attempt" 1 (jint json "attempts");
      (* the job's result is the exact GET /v1/datasets/{id}/risk body *)
      let status, risk =
        http_call ~port ~meth:"GET" ~target:"/v1/datasets/fig6/risk" ()
      in
      Alcotest.(check int) "risk 200" 200 status;
      Alcotest.(check string) "result byte-identical to the risk route" risk
        (jstr json "result");
      (* anonymize jobs settle too *)
      let status, body = submit_job ~port ~dataset:"fig6" ~op:"anonymize" () in
      Alcotest.(check int) "anonymize accepted" 202 status;
      let json = wait_job ~port (jstr (json_of body) "id") in
      Alcotest.(check string) "anonymize done" "done" (jstr json "state");
      (* the listing shows both, submission order *)
      let status, body = http_call ~port ~meth:"GET" ~target:"/v1/jobs" () in
      Alcotest.(check int) "list 200" 200 status;
      Alcotest.(check bool) "listing mentions the job" true
        (Astring_contains.contains body id);
      (* typed errors: bad op, unknown job, unknown dataset *)
      let status, body = submit_job ~port ~dataset:"fig6" ~op:"nope" () in
      Alcotest.(check int) "bad op 400" 400 status;
      Alcotest.(check (option string)) "bad op code" (Some "job.bad_op")
        (error_code body);
      let status, body =
        http_call ~port ~meth:"GET" ~target:"/v1/jobs/job-999999" ()
      in
      Alcotest.(check int) "unknown job 404" 404 status;
      Alcotest.(check (option string)) "unknown job code" (Some "job.not_found")
        (error_code body);
      let status, body = submit_job ~port ~dataset:"ghost" ~op:"risk" () in
      Alcotest.(check int) "unknown dataset 404" 404 status;
      Alcotest.(check (option string))
        "unknown dataset code" (Some "dataset.not_found") (error_code body))

(* a job whose first step faults (injected job.step) re-executes under
   the retry policy; a queued job cancels immediately with its worker
   slot released *)
let test_jobs_retry_and_cancel () =
  let csv = Lazy.force figure6_csv in
  F.reset ();
  Fun.protect ~finally:F.reset (fun () ->
      with_jobs_server ~job_domains:1 (fun _handlers port ->
          put_dataset ~port ~id:"fig6" csv;
          (* first step attempt faults; the retry succeeds *)
          (match F.arm ~at:1 "job.step" F.Fail with
          | Ok () -> ()
          | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
          let status, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
          Alcotest.(check int) "accepted" 202 status;
          let json = wait_job ~port (jstr (json_of body) "id") in
          Alcotest.(check string) "retried to done" "done" (jstr json "state");
          Alcotest.(check int) "two attempts" 2 (jint json "attempts");
          F.reset ();
          (* hold the single worker busy, cancel the job queued behind it *)
          (match F.arm ~at:1 "job.step" (F.Delay 1.0) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
          let _, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
          let slow = jstr (json_of body) "id" in
          let _, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
          let queued = jstr (json_of body) "id" in
          let status, body =
            http_call ~port ~meth:"DELETE" ~target:("/v1/jobs/" ^ queued) ()
          in
          Alcotest.(check int) "cancel 200" 200 status;
          let json = json_of body in
          Alcotest.(check string) "cancelled" "cancelled" (jstr json "state");
          (match Json.member "error" json with
          | Some e ->
            Alcotest.(check string) "job.cancelled" "job.cancelled"
              (jstr e "code")
          | None -> Alcotest.fail "cancelled job carries its error");
          (* cancel is idempotent *)
          let status, _ =
            http_call ~port ~meth:"DELETE" ~target:("/v1/jobs/" ^ queued) ()
          in
          Alcotest.(check int) "cancel again 200" 200 status;
          let json = wait_job ~port slow in
          Alcotest.(check string) "the slow one still finishes" "done"
            (jstr json "state")))

(* the admission gates answer typed 429s with a Retry-After header *)
let test_jobs_admission_gates () =
  let csv = Lazy.force figure6_csv in
  F.reset ();
  Fun.protect ~finally:F.reset (fun () ->
      (* rate: a one-token bucket that refills absurdly slowly *)
      with_jobs_server ~tenant_rate:0.0001 ~tenant_burst:1.0
        (fun _handlers port ->
          put_dataset ~port ~id:"fig6" csv;
          let status, _ = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
          Alcotest.(check int) "first admitted" 202 status;
          let status, head, body =
            http_call_full ~port ~meth:"POST" ~target:"/v1/jobs"
              ~body:"{\"dataset\": \"fig6\", \"op\": \"risk\"}" ()
          in
          Alcotest.(check int) "rate limited" 429 status;
          Alcotest.(check (option string)) "typed code"
            (Some "tenant.rate_limited") (error_code body);
          Alcotest.(check bool) "Retry-After advertised" true
            (Astring_contains.contains head "retry-after:");
          (* another tenant has its own bucket *)
          let status, _ =
            submit_job
              ~headers:[ ("x-vadasa-tenant", "other") ]
              ~port ~dataset:"fig6" ~op:"risk" ()
          in
          Alcotest.(check int) "tenants are isolated" 202 status);
      (* quota: one active job per tenant *)
      with_jobs_server ~job_domains:1 ~tenant_quota:1 (fun _handlers port ->
          put_dataset ~port ~id:"fig6" csv;
          (match F.arm ~at:1 "job.step" (F.Delay 1.0) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
          let status, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
          Alcotest.(check int) "first admitted" 202 status;
          let slow = jstr (json_of body) "id" in
          let status, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
          Alcotest.(check int) "quota exceeded" 429 status;
          Alcotest.(check (option string)) "typed code"
            (Some "tenant.quota_exceeded") (error_code body);
          ignore (wait_job ~port slow)))

(* Terminal jobs are pruned past the per-tenant retention cap, oldest
   first, so the table — and with it GET /v1/jobs and every snapshot
   dump — stays bounded over the server's lifetime. *)
let test_jobs_terminal_retention () =
  let csv = Lazy.force figure6_csv in
  let registry = Registry.create () in
  ignore (put_base registry (csv_slice csv 0 20));
  let jobs = Jobs.create ~domains:1 ~retain:2 registry in
  Fun.protect
    ~finally:(fun () -> Jobs.stop jobs)
    (fun () ->
      let ids =
        List.init 5 (fun _ ->
            Jobs.job_id
              (Jobs.submit jobs ~tenant:"t" ~dataset:"d" ~op:"risk"
                 ~options:Codec.default_options))
      in
      let deadline = Unix.gettimeofday () +. 20.0 in
      let rec settle () =
        let c = Jobs.counters jobs in
        if c.Jobs.completed + c.Jobs.failed + c.Jobs.cancelled < 5 then
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "jobs never settled"
          else begin
            Unix.sleepf 0.02;
            settle ()
          end
      in
      settle ();
      let kept = List.map Jobs.job_id (Jobs.list jobs) in
      Alcotest.(check int) "only [retain] jobs kept" 2 (List.length kept);
      Alcotest.(check (list string))
        "the newest survive"
        (List.filteri (fun i _ -> i >= 3) ids)
        kept;
      Alcotest.(check int) "prunes counted" 3 (Jobs.counters jobs).Jobs.pruned)

(* Minting fresh tenant names must not launder an existing tenant's
   rate-limit debt: once the bucket table trips its bound, only buckets
   already refilled to full burst are forgotten. *)
let test_jobs_rate_limit_survives_tenant_churn () =
  let csv = Lazy.force figure6_csv in
  let registry = Registry.create () in
  ignore (put_base registry (csv_slice csv 0 20));
  let jobs =
    Jobs.create ~domains:1 ~queue:2048 ~rate:0.0001 ~burst:1.0 registry
  in
  Fun.protect
    ~finally:(fun () -> Jobs.stop jobs)
    (fun () ->
      let submit tenant =
        Jobs.submit jobs ~tenant ~dataset:"d" ~op:"risk"
          ~options:Codec.default_options
      in
      ignore (submit "debtor");
      let limited tenant =
        match submit tenant with
        | _ -> false
        | exception E.Error e -> e.E.code = "tenant.rate_limited"
      in
      Alcotest.(check bool) "debtor is rate limited" true (limited "debtor");
      (* churn enough fresh tenants to trip the bucket-table bound *)
      for i = 1 to 1100 do
        ignore (submit (Printf.sprintf "guest-%04d" i))
      done;
      Alcotest.(check bool) "debt survives the churn" true (limited "debtor"))

(* restart: terminal jobs survive byte-identically, queued jobs re-run
   (marked replayed), mid-flight jobs fault as orphaned *)
let test_jobs_crash_resume () =
  let csv = Lazy.force figure6_csv in
  let dir = tmp_dir () in
  F.reset ();
  Fun.protect ~finally:F.reset (fun () ->
      let persist = Persist.open_ ~snapshot_every:100000 ~dir () in
      let handlers_a, server_a, port =
        start_server ~persist ~job_domains:1 ()
      in
      ignore handlers_a;
      put_dataset ~port ~id:"fig6" csv;
      let _, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
      let done_id = jstr (json_of body) "id" in
      let done_json = wait_job ~port done_id in
      Alcotest.(check string) "settled before crash" "done"
        (jstr done_json "state");
      let done_result = jstr done_json "result" in
      (* park one job mid-step on the single worker, queue one behind it *)
      (match F.arm ~at:1 "job.step" (F.Delay 30.0) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arm: %s" (E.to_string e));
      let _, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
      let running_id = jstr (json_of body) "id" in
      let _, body = submit_job ~port ~dataset:"fig6" ~op:"risk" () in
      let queued_id = jstr (json_of body) "id" in
      Unix.sleepf 0.4 (* let the worker pick up and journal job.start *);
      (* crash: only the accept loop is torn down; the handlers (and
         the persist store, mid-flight worker included) are abandoned *)
      Srv.Server.shutdown server_a;
      F.reset ();
      (* restart over the same data dir *)
      let persist_b = Persist.open_ ~snapshot_every:100000 ~dir () in
      let handlers_b, server_b, port =
        start_server ~persist:persist_b ~job_domains:1 ()
      in
      Fun.protect
        ~finally:(fun () ->
          Srv.Server.shutdown server_b;
          Srv.Handlers.shutdown handlers_b)
        (fun () ->
          (* the finished job survived, result bytes included *)
          let status, body =
            http_call ~port ~meth:"GET" ~target:("/v1/jobs/" ^ done_id) ()
          in
          Alcotest.(check int) "terminal job survives" 200 status;
          let json = json_of body in
          Alcotest.(check string) "still done" "done" (jstr json "state");
          Alcotest.(check string) "result byte-identical across restart"
            done_result (jstr json "result");
          (* the mid-flight job faulted terminally *)
          let _, body =
            http_call ~port ~meth:"GET" ~target:("/v1/jobs/" ^ running_id) ()
          in
          let json = json_of body in
          Alcotest.(check string) "orphaned" "orphaned" (jstr json "state");
          (match Json.member "error" json with
          | Some e ->
            Alcotest.(check string) "job.orphaned" "job.orphaned"
              (jstr e "code")
          | None -> Alcotest.fail "orphaned job carries its error");
          (* the queued job re-ran, marked replayed, and its result
             matches the live route on the recovered registry *)
          let json = wait_job ~port queued_id in
          Alcotest.(check string) "replayed job settles" "done"
            (jstr json "state");
          Alcotest.(check bool) "marked replayed" true (jbool json "replayed");
          Alcotest.(check string) "replayed result matches the live route"
            done_result (jstr json "result");
          (* the dataset itself recovered byte-identically *)
          let _, risk =
            http_call ~port ~meth:"GET" ~target:"/v1/datasets/fig6/risk" ()
          in
          Alcotest.(check string) "registry recovered byte-identical"
            done_result risk;
          (* the durability counters are on the Prometheus surface *)
          let status, _, prom =
            http_call_full ~port ~meth:"GET" ~target:"/metrics"
              ~headers:[ ("accept", "text/plain; version=0.0.4") ]
              ()
          in
          Alcotest.(check int) "prometheus 200" 200 status;
          List.iter
            (fun family ->
              Alcotest.(check bool) (family ^ " exposed") true
                (Astring_contains.contains prom family))
            [
              "vadasa_jobs_submitted_total";
              "vadasa_jobs_orphaned_total";
              "vadasa_jobs_replayed_total";
              "vadasa_journal_appends_total";
              "vadasa_journal_fsyncs_total";
            ]))

(* --- the retry policy ------------------------------------------------------ *)

let flat_policy =
  {
    Retry.max_attempts = 4;
    base_delay = 0.1;
    max_delay = 10.0;
    multiplier = 2.0;
    jitter = 0.0;
    budget = 100.0;
  }

let transient = E.make ~code:"net.flaky" E.Io "transient"

let test_retry_schedule () =
  (* the schedule is a pure function of (policy, attempt, draw) *)
  Alcotest.(check (float 1e-9)) "first retry" 0.1
    (Retry.delay flat_policy ~attempt:1 ~retry_after:None ~u:0.5);
  Alcotest.(check (float 1e-9)) "doubles" 0.2
    (Retry.delay flat_policy ~attempt:2 ~retry_after:None ~u:0.5);
  Alcotest.(check (float 1e-9)) "Retry-After replaces the schedule" 3.0
    (Retry.delay flat_policy ~attempt:1 ~retry_after:(Some 3.0) ~u:0.5);
  Alcotest.(check (float 1e-9)) "Retry-After still capped" 10.0
    (Retry.delay flat_policy ~attempt:1 ~retry_after:(Some 3600.0) ~u:0.5);
  let jittery = { flat_policy with Retry.jitter = 0.25 } in
  Alcotest.(check (float 1e-9)) "jitter widens" 0.125
    (Retry.delay jittery ~attempt:1 ~retry_after:None ~u:1.0);
  Alcotest.(check (float 1e-9)) "jitter narrows" 0.075
    (Retry.delay jittery ~attempt:1 ~retry_after:None ~u:0.0)

let test_retry_run () =
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let rand () = 0.5 in
  (* two transient failures, then success: two exact backoff sleeps *)
  let calls = ref 0 in
  let v =
    Retry.run ~policy:flat_policy ~sleep ~rand
      ~should_retry:(fun ~attempt:_ _ -> Some None)
      (fun () ->
        incr calls;
        if !calls < 3 then raise (E.Error transient) else "ok")
  in
  Alcotest.(check string) "succeeds" "ok" v;
  Alcotest.(check (list (float 1e-9))) "exact schedule" [ 0.1; 0.2 ]
    (List.rev !sleeps);
  (* a server-directed Retry-After replaces the computed wait *)
  sleeps := [];
  calls := 0;
  ignore
    (Retry.run ~policy:flat_policy ~sleep ~rand
       ~should_retry:(fun ~attempt:_ _ -> Some (Some 0.7))
       (fun () ->
         incr calls;
         if !calls < 2 then raise (E.Error transient) else ()));
  Alcotest.(check (list (float 1e-9))) "honors Retry-After" [ 0.7 ]
    (List.rev !sleeps);
  (* non-retryable: exactly one call, the error unchanged *)
  calls := 0;
  (match
     Retry.run ~policy:flat_policy ~sleep ~rand
       ~should_retry:(fun ~attempt:_ _ -> None)
       (fun () ->
         incr calls;
         raise (E.Error transient))
   with
  | () -> Alcotest.fail "expected the error"
  | exception E.Error e ->
    Alcotest.(check string) "not retried" "net.flaky" e.E.code;
    Alcotest.(check (option string)) "no retry context" None
      (E.context_value e "retry_attempts"));
  Alcotest.(check int) "one call" 1 !calls

let test_retry_exhaustion () =
  let sleep _ = () in
  let rand () = 0.5 in
  (* attempts run out: the last error gains the retry context *)
  let calls = ref 0 in
  (match
     Retry.run
       ~policy:{ flat_policy with Retry.max_attempts = 3 }
       ~sleep ~rand
       ~should_retry:(fun ~attempt:_ _ -> Some None)
       (fun () ->
         incr calls;
         raise (E.Error transient))
   with
  | () -> Alcotest.fail "expected exhaustion"
  | exception E.Error e ->
    Alcotest.(check int) "three attempts" 3 !calls;
    Alcotest.(check (option string)) "attempts in context" (Some "3")
      (E.context_value e "retry_attempts");
    Alcotest.(check (option string)) "reason in context" (Some "max_attempts")
      (E.context_value e "retry_exhausted"));
  (* the sleep budget runs out before the attempts do *)
  let calls = ref 0 in
  match
    Retry.run
      ~policy:
        {
          flat_policy with
          Retry.max_attempts = 100;
          multiplier = 1.0;
          base_delay = 0.2;
          budget = 0.3;
        }
      ~sleep ~rand
      ~should_retry:(fun ~attempt:_ _ -> Some None)
      (fun () ->
        incr calls;
        raise (E.Error transient))
  with
  | () -> Alcotest.fail "expected exhaustion"
  | exception E.Error e ->
    Alcotest.(check int) "budget stops at two calls" 2 !calls;
    Alcotest.(check (option string)) "reason is budget" (Some "budget")
      (E.context_value e "retry_exhausted")

(* --- suite ----------------------------------------------------------------- *)

let () =
  Alcotest.run "durability"
    [
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail at every byte" `Quick
            test_journal_torn_tail_every_byte;
          Alcotest.test_case "fault rollback" `Quick
            test_journal_fault_rollback;
          Alcotest.test_case "4-domain group commit" `Quick
            test_journal_concurrent_appends;
          Alcotest.test_case "torn tail truncated on reopen" `Quick
            test_journal_torn_tail_truncated_on_reopen;
        ] );
      ( "persist",
        [
          Alcotest.test_case "commit / replay / snapshot" `Quick
            test_persist_commit_replay_snapshot;
          Alcotest.test_case "seq continues after snapshot" `Quick
            test_persist_seq_continues_after_snapshot;
        ] );
      ( "registry",
        [
          Alcotest.test_case "crash recover byte-identical" `Quick
            test_registry_crash_recover_identical;
          Alcotest.test_case "4-domain append hammer" `Quick
            test_registry_concurrent_append_hammer;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "e2e over HTTP" `Quick test_jobs_e2e_http;
          Alcotest.test_case "retry and cancel" `Quick
            test_jobs_retry_and_cancel;
          Alcotest.test_case "admission gates" `Quick
            test_jobs_admission_gates;
          Alcotest.test_case "terminal retention" `Quick
            test_jobs_terminal_retention;
          Alcotest.test_case "rate limit survives tenant churn" `Quick
            test_jobs_rate_limit_survives_tenant_churn;
          Alcotest.test_case "crash resume" `Quick test_jobs_crash_resume;
        ] );
      ( "retry",
        [
          Alcotest.test_case "schedule" `Quick test_retry_schedule;
          Alcotest.test_case "run" `Quick test_retry_run;
          Alcotest.test_case "exhaustion" `Quick test_retry_exhaustion;
        ] );
    ]
