(* Tests for the relational substrate: schemas, tuples, relations, algebra,
   null-aware group statistics, CSV. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational

let value = Alcotest.testable Value.pp Value.equal

let mk_rel names rows =
  R.Relation.of_tuples
    (R.Schema.of_names ~name:"t" names)
    (List.map (fun row -> Array.of_list (List.map Value.of_literal row)) rows)

let test_schema_basics () =
  let s = R.Schema.of_names ~name:"m" [ "id"; "area"; "sector" ] in
  Alcotest.(check int) "arity" 3 (R.Schema.arity s);
  Alcotest.(check int) "index" 1 (R.Schema.index_of s "area");
  Alcotest.(check bool) "mem" true (R.Schema.mem s "sector");
  Alcotest.(check bool) "not mem" false (R.Schema.mem s "zzz");
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate attribute a")
    (fun () -> ignore (R.Schema.of_names ~name:"x" [ "a"; "a" ]))

let test_schema_restrict () =
  let s = R.Schema.of_names ~name:"m" [ "a"; "b"; "c" ] in
  let r = R.Schema.restrict s [ "c"; "a" ] in
  Alcotest.(check (list string)) "order kept" [ "c"; "a" ] (R.Schema.attribute_names r)

let test_tuple_ops () =
  let t = R.Tuple.of_list [ Value.Int 1; Value.Str "x"; Value.Null 2 ] in
  Alcotest.(check bool) "has null" true (R.Tuple.has_null t);
  Alcotest.(check (list int)) "null positions" [ 2 ] (R.Tuple.null_positions t);
  Alcotest.(check int) "mask" 4 (R.Tuple.null_mask t);
  let t2 = R.Tuple.set t 0 (Value.Int 9) in
  Alcotest.check value "functional set" (Value.Int 1) (R.Tuple.get t 0);
  Alcotest.check value "new value" (Value.Int 9) (R.Tuple.get t2 0);
  let p = R.Tuple.project t [| 2; 0 |] in
  Alcotest.check value "projected" (Value.Null 2) (R.Tuple.get p 0)

let test_tuple_key_injective () =
  let a = R.Tuple.of_list [ Value.Str "ab"; Value.Str "c" ] in
  let b = R.Tuple.of_list [ Value.Str "a"; Value.Str "bc" ] in
  Alcotest.(check bool) "keys differ" false (String.equal (R.Tuple.key a) (R.Tuple.key b))

let test_relation_mutation () =
  let rel = mk_rel [ "a" ] [ [ "1" ]; [ "2" ] ] in
  R.Relation.set rel 0 [| Value.Int 99 |];
  Alcotest.check value "in-place" (Value.Int 99) (R.Relation.get rel 0).(0);
  Alcotest.(check int) "cardinal" 2 (R.Relation.cardinal rel);
  let copy = R.Relation.copy rel in
  R.Relation.set rel 0 [| Value.Int 1 |];
  Alcotest.check value "copy isolated" (Value.Int 99) (R.Relation.get copy 0).(0)

let test_count_nulls () =
  let rel = mk_rel [ "a"; "b" ] [ [ "#1"; "x" ]; [ "#2"; "#3" ] ] in
  Alcotest.(check int) "nulls" 3 (R.Relation.count_nulls rel)

let test_select_project_distinct () =
  let rel = mk_rel [ "a"; "b" ] [ [ "1"; "x" ]; [ "2"; "x" ]; [ "2"; "y" ] ] in
  let sel = R.Algebra.select (fun t -> Value.equal t.(0) (Value.Int 2)) rel in
  Alcotest.(check int) "selected" 2 (R.Relation.cardinal sel);
  let proj = R.Algebra.project rel [ "b" ] in
  Alcotest.(check int) "projected keeps bag" 3 (R.Relation.cardinal proj);
  Alcotest.(check int) "distinct" 2 (R.Relation.cardinal (R.Algebra.distinct proj))

let test_natural_join () =
  let left = mk_rel [ "id"; "area" ] [ [ "1"; "north" ]; [ "2"; "south" ] ] in
  let right =
    R.Relation.of_tuples
      (R.Schema.of_names ~name:"o" [ "area"; "region" ])
      [
        [| Value.Str "north"; Value.Str "it-n" |];
        [| Value.Str "north"; Value.Str "it-n2" |];
      ]
  in
  let j = R.Algebra.natural_join left right in
  Alcotest.(check int) "matches" 2 (R.Relation.cardinal j);
  Alcotest.(check int) "arity" 3 (R.Schema.arity (R.Relation.schema j))

let test_equi_join () =
  let left = mk_rel [ "x" ] [ [ "1" ]; [ "2" ] ] in
  let right = R.Relation.of_tuples (R.Schema.of_names ~name:"r" [ "y" ])
      [ [| Value.Int 2 |]; [| Value.Int 3 |] ] in
  let j = R.Algebra.equi_join ~left ~right ~on:[ ("x", "y") ] in
  Alcotest.(check int) "one match" 1 (R.Relation.cardinal j)

let test_union_sort () =
  let a = mk_rel [ "x" ] [ [ "3" ]; [ "1" ] ] in
  let b = mk_rel [ "x" ] [ [ "2" ] ] in
  let u = R.Algebra.union a b in
  let sorted = R.Algebra.sort_by u R.Tuple.compare in
  Alcotest.check value "sorted first" (Value.Int 1) (R.Relation.get sorted 0).(0)

(* --- group statistics: the paper's Figure 5 worked example -------------- *)

(* Figure 5a: 7 tuples, 4 quasi-identifiers. Frequencies 1,2,2,2,2,1,1. *)
let figure5 () =
  mk_rel
    [ "id"; "area"; "sector"; "employees"; "rev" ]
    [
      [ "1"; "Roma"; "Textiles"; "1000+"; "0-30" ];
      [ "2"; "Roma"; "Commerce"; "1000+"; "0-30" ];
      [ "3"; "Roma"; "Commerce"; "1000+"; "0-30" ];
      [ "4"; "Roma"; "Financial"; "1000+"; "0-30" ];
      [ "5"; "Roma"; "Financial"; "1000+"; "0-30" ];
      [ "6"; "Milano"; "Construction"; "0-200"; "60-90" ];
      [ "7"; "Torino"; "Construction"; "0-200"; "60-90" ];
    ]

let qi = [| 1; 2; 3; 4 |]

let test_group_stats_standard () =
  let rel = figure5 () in
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Standard ~rel ~qi ()
  in
  Alcotest.(check (array int)) "figure 5a frequencies"
    [| 1; 2; 2; 2; 2; 1; 1 |] stats.R.Algebra.Group_stats.freq

let test_group_stats_maybe_match_after_suppression () =
  (* Figure 5b: suppressing tuple 1's Sector with ⊥₁ lifts its frequency to
     5 and tuples 2-5 to 3; tuples 6-7 are untouched. *)
  let rel = figure5 () in
  R.Relation.set rel 0
    [| Value.Int 1; Value.Str "Roma"; Value.Null 1; Value.Str "1000+"; Value.Str "0-30" |];
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel ~qi ()
  in
  Alcotest.(check (array int)) "figure 5b frequencies"
    [| 5; 3; 3; 3; 3; 1; 1 |] stats.R.Algebra.Group_stats.freq

let test_group_stats_standard_semantics_nulls_isolate () =
  (* Under the standard semantics a fresh null leaves the tuple alone in
     its group — suppression cannot help (Figure 7c's red curves). *)
  let rel = figure5 () in
  R.Relation.set rel 0
    [| Value.Int 1; Value.Str "Roma"; Value.Null 1; Value.Str "1000+"; Value.Str "0-30" |];
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Standard ~rel ~qi ()
  in
  Alcotest.(check int) "still unique" 1 stats.R.Algebra.Group_stats.freq.(0)

let test_group_stats_weighted () =
  let rel =
    mk_rel [ "area"; "w" ] [ [ "n"; "10" ]; [ "n"; "20" ]; [ "s"; "5" ] ]
  in
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Standard ~rel
      ~qi:[| 0 |] ~weight:1 ()
  in
  Alcotest.(check (array (float 1e-9))) "weight sums"
    [| 30.0; 30.0; 5.0 |] stats.R.Algebra.Group_stats.weight_sum

let test_group_stats_null_vs_null () =
  let rel =
    mk_rel [ "a"; "b" ]
      [ [ "#1"; "x" ]; [ "#2"; "x" ]; [ "#3"; "y" ]; [ "c"; "x" ] ]
  in
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel
      ~qi:[| 0; 1 |] ()
  in
  (* (⊥,x) matches (⊥,x), (c,x) and itself; (⊥,y) only itself. *)
  Alcotest.(check (array int)) "null-null matching" [| 3; 3; 1; 3 |]
    stats.R.Algebra.Group_stats.freq

let test_null_semantics_tuple_equal () =
  let a = [| Value.Str "x"; Value.Null 1 |] in
  let b = [| Value.Str "x"; Value.Int 3 |] in
  Alcotest.(check bool) "maybe" true
    (R.Null_semantics.equal_tuple R.Null_semantics.Maybe_match a b);
  Alcotest.(check bool) "standard" false
    (R.Null_semantics.equal_tuple R.Null_semantics.Standard a b)

(* --- CSV ----------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let rel =
    mk_rel [ "id"; "name"; "w" ]
      [ [ "1"; "plain"; "1.5" ]; [ "2"; "with, comma"; "2.5" ] ]
  in
  let rel' = R.Csv.read_string ~name:"t" (R.Csv.write_string rel) in
  Alcotest.(check int) "cardinal" 2 (R.Relation.cardinal rel');
  Alcotest.check value "comma survives" (Value.Str "with, comma")
    (R.Relation.get rel' 1).(1);
  Alcotest.check value "float survives" (Value.Float 2.5) (R.Relation.get rel' 1).(2)

let test_csv_quoting () =
  Alcotest.(check (list string)) "quoted field" [ "a"; "b,c"; "d\"e" ]
    (R.Csv.parse_line {|a,"b,c","d""e"|});
  Alcotest.(check string) "render" {|a,"b,c"|} (R.Csv.render_line [ "a"; "b,c" ])

let test_csv_ragged_rejected () =
  match R.Csv.read_string ~name:"t" "a,b\n1\n" with
  | _ -> Alcotest.fail "ragged row must be rejected"
  | exception Vadasa_base.Error.Error e ->
    Alcotest.(check string) "typed code" "csv.ragged_row" e.Vadasa_base.Error.code;
    (* the position of the failure is part of the contract *)
    Alcotest.(check (option string))
      "line" (Some "2")
      (Vadasa_base.Error.context_value e "line")

(* --- properties ---------------------------------------------------------- *)

let gen_small_rel =
  QCheck2.Gen.(
    let cell = map (fun i ->
        if i = 9 then Value.Null 1
        else Value.Str (String.make 1 (Char.chr (97 + (i mod 3))))) (int_bound 9) in
    list_size (int_range 1 30) (pair cell cell))

let prop_maybe_freq_geq_standard =
  QCheck2.Test.make
    ~name:"maybe-match frequencies dominate standard frequencies" ~count:100
    gen_small_rel
    (fun rows ->
      let rel =
        R.Relation.of_tuples
          (R.Schema.of_names ~name:"t" [ "a"; "b" ])
          (List.map (fun (a, b) -> [| a; b |]) rows)
      in
      let qi = [| 0; 1 |] in
      let std =
        R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Standard ~rel ~qi ()
      in
      let mm =
        R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel ~qi ()
      in
      Array.for_all2 (fun m s -> m >= s)
        mm.R.Algebra.Group_stats.freq std.R.Algebra.Group_stats.freq)

let prop_maybe_freq_matches_naive =
  QCheck2.Test.make
    ~name:"maybe-match group stats equal the O(n²) definition" ~count:100
    gen_small_rel
    (fun rows ->
      let tuples = List.map (fun (a, b) -> [| a; b |]) rows in
      let rel =
        R.Relation.of_tuples (R.Schema.of_names ~name:"t" [ "a"; "b" ]) tuples
      in
      let qi = [| 0; 1 |] in
      let stats =
        R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel ~qi ()
      in
      let arr = Array.of_list tuples in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          let expected =
            Array.fold_left
              (fun acc u ->
                if R.Null_semantics.equal_tuple R.Null_semantics.Maybe_match t u
                then acc + 1
                else acc)
              0 arr
          in
          if stats.R.Algebra.Group_stats.freq.(i) <> expected then ok := false)
        arr;
      !ok)

let prop_csv_roundtrip =
  QCheck2.Test.make ~name:"csv round-trips arbitrary string cells" ~count:100
    QCheck2.Gen.(list_size (int_range 1 10) (pair (string_printable) (int_bound 1000)))
    (fun rows ->
      (* Avoid cells that parse as something else after round-trip. *)
      let sanitize s = "s_" ^ String.map (fun c -> if c = '\n' || c = '\r' then '_' else c) s in
      let rel =
        R.Relation.of_tuples
          (R.Schema.of_names ~name:"t" [ "a"; "b" ])
          (List.map (fun (s, i) -> [| Value.Str (sanitize s); Value.Int i |]) rows)
      in
      let rel' = R.Csv.read_string ~name:"t" (R.Csv.write_string rel) in
      R.Relation.cardinal rel = R.Relation.cardinal rel'
      && List.for_all2 R.Tuple.equal (R.Relation.to_list rel) (R.Relation.to_list rel'))

(* --- additional algebra edge cases -------------------------------------- *)

let test_natural_join_disjoint_is_product () =
  let left = mk_rel [ "a" ] [ [ "1" ]; [ "2" ] ] in
  let right =
    R.Relation.of_tuples (R.Schema.of_names ~name:"r" [ "b" ])
      [ [| Value.Str "x" |]; [| Value.Str "y" |]; [| Value.Str "z" |] ]
  in
  let j = R.Algebra.natural_join left right in
  Alcotest.(check int) "cartesian product" 6 (R.Relation.cardinal j)

let test_union_arity_mismatch () =
  let a = mk_rel [ "x" ] [ [ "1" ] ] in
  let b = mk_rel [ "x"; "y" ] [ [ "1"; "2" ] ] in
  Alcotest.check_raises "arity" (Invalid_argument "Algebra.union: arity mismatch")
    (fun () -> ignore (R.Algebra.union a b))

let test_group_indices () =
  let rel = mk_rel [ "a"; "b" ] [ [ "x"; "1" ]; [ "y"; "2" ]; [ "x"; "3" ] ] in
  let groups = R.Algebra.group_indices rel ~cols:[| 0 |] in
  Alcotest.(check int) "two groups" 2 (Hashtbl.length groups);
  let sizes =
    List.sort compare (Hashtbl.fold (fun _ l acc -> List.length l :: acc) groups [])
  in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes;
  (* Members are stored ascending. *)
  Hashtbl.iter
    (fun _ members ->
      Alcotest.(check (list int)) "ascending" (List.sort compare members) members)
    groups

let test_group_stats_single_tuple () =
  let rel = mk_rel [ "a" ] [ [ "x" ] ] in
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel
      ~qi:[| 0 |] ()
  in
  Alcotest.(check (array int)) "self only" [| 1 |] stats.R.Algebra.Group_stats.freq

let test_group_stats_all_null_tuple () =
  (* A fully suppressed tuple matches everything. *)
  let rel = mk_rel [ "a"; "b" ] [ [ "#1"; "#2" ]; [ "x"; "y" ]; [ "z"; "w" ] ] in
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel
      ~qi:[| 0; 1 |] ()
  in
  Alcotest.(check int) "wildcard matches all" 3 stats.R.Algebra.Group_stats.freq.(0);
  Alcotest.(check int) "constants gain the wildcard" 2
    stats.R.Algebra.Group_stats.freq.(1)

let test_group_stats_same_pattern_classes () =
  (* Distinct null labels, same pattern: must still match each other. *)
  let rel =
    mk_rel [ "a"; "b" ] [ [ "#1"; "x" ]; [ "#2"; "x" ]; [ "#3"; "x" ] ]
  in
  let stats =
    R.Algebra.Group_stats.compute ~semantics:R.Null_semantics.Maybe_match ~rel
      ~qi:[| 0; 1 |] ()
  in
  Alcotest.(check (array int)) "class of three" [| 3; 3; 3 |]
    stats.R.Algebra.Group_stats.freq

let test_csv_no_header () =
  let rel = R.Csv.read_string ~header:false ~name:"t" "1,x\n2,y\n" in
  Alcotest.(check int) "rows" 2 (R.Relation.cardinal rel);
  Alcotest.(check (list string)) "generated names" [ "c0"; "c1" ]
    (R.Schema.attribute_names (R.Relation.schema rel))

let test_csv_null_roundtrip () =
  let rel = mk_rel [ "a" ] [ [ "#7" ] ] in
  let rel' = R.Csv.read_string ~name:"t" (R.Csv.write_string rel) in
  Alcotest.check value "null survives" (Value.Null 7) (R.Relation.get rel' 0).(0)

let () =
  Alcotest.run "relational"
    [
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "restrict" `Quick test_schema_restrict;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "operations" `Quick test_tuple_ops;
          Alcotest.test_case "key injective" `Quick test_tuple_key_injective;
        ] );
      ( "relation",
        [
          Alcotest.test_case "mutation and copy" `Quick test_relation_mutation;
          Alcotest.test_case "null counting" `Quick test_count_nulls;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "select/project/distinct" `Quick
            test_select_project_distinct;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "equi join" `Quick test_equi_join;
          Alcotest.test_case "union and sort" `Quick test_union_sort;
        ] );
      ( "group stats",
        [
          Alcotest.test_case "figure 5a standard" `Quick test_group_stats_standard;
          Alcotest.test_case "figure 5b maybe-match" `Quick
            test_group_stats_maybe_match_after_suppression;
          Alcotest.test_case "standard isolates nulls" `Quick
            test_group_stats_standard_semantics_nulls_isolate;
          Alcotest.test_case "weighted" `Quick test_group_stats_weighted;
          Alcotest.test_case "null vs null" `Quick test_group_stats_null_vs_null;
          Alcotest.test_case "tuple equality semantics" `Quick
            test_null_semantics_tuple_equal;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "ragged rejected" `Quick test_csv_ragged_rejected;
          Alcotest.test_case "headerless" `Quick test_csv_no_header;
          Alcotest.test_case "null roundtrip" `Quick test_csv_null_roundtrip;
        ] );
      ( "algebra edge cases",
        [
          Alcotest.test_case "disjoint natural join" `Quick
            test_natural_join_disjoint_is_product;
          Alcotest.test_case "union arity" `Quick test_union_arity_mismatch;
          Alcotest.test_case "group indices" `Quick test_group_indices;
          Alcotest.test_case "singleton stats" `Quick test_group_stats_single_tuple;
          Alcotest.test_case "all-null wildcard" `Quick test_group_stats_all_null_tuple;
          Alcotest.test_case "null pattern classes" `Quick
            test_group_stats_same_pattern_classes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_maybe_freq_geq_standard;
            prop_maybe_freq_matches_naive;
            prop_csv_roundtrip;
          ] );
    ]
