(* Tests for the Vada-SA core: microdata model, dictionary, categorization,
   risk measures (anchored to the paper's worked numbers), anonymization,
   the cycle, business knowledge, and native-vs-engine equivalence. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen

let value = Alcotest.testable Value.pp Value.equal

let figure1 = D.Ig_survey.figure1
let figure5 = D.Ig_survey.figure5

(* --- microdata model ----------------------------------------------------- *)

let test_microdata_positions () =
  let md = figure1 () in
  Alcotest.(check (list string))
    "quasi-identifiers"
    [ "area"; "sector"; "employees"; "residential_revenue"; "export_revenue" ]
    (S.Microdata.quasi_identifiers md);
  Alcotest.(check int) "weight position" 8
    (Option.get (S.Microdata.weight_position md));
  Alcotest.(check (float 1e-9)) "weight of tuple 0" 230.0
    (S.Microdata.weight_of md 0)

let test_microdata_validation () =
  let rel = R.Relation.create (R.Schema.of_names ~name:"t" [ "a"; "b" ]) in
  Alcotest.(check bool) "missing category rejected" true
    (try
       ignore (S.Microdata.make rel [ ("a", S.Microdata.Identifier) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "double weight rejected" true
    (try
       ignore
         (S.Microdata.make rel
            [ ("a", S.Microdata.Weight); ("b", S.Microdata.Weight) ]);
       false
     with Invalid_argument _ -> true)

let test_drop_identifiers () =
  let md = figure1 () in
  let exported = S.Microdata.drop_identifiers md in
  Alcotest.(check bool) "id gone" false
    (R.Schema.mem (R.Relation.schema exported) "id");
  Alcotest.(check int) "arity" 8 (R.Schema.arity (R.Relation.schema exported))

let test_copy_isolation () =
  let md = figure1 () in
  let copy = S.Microdata.copy md in
  R.Relation.set (S.Microdata.relation copy) 0 [| Value.Int 0; Value.Int 0;
    Value.Int 0; Value.Int 0; Value.Int 0; Value.Int 0; Value.Int 0;
    Value.Int 0; Value.Int 0 |];
  Alcotest.check value "original untouched" (Value.Str "North")
    (R.Relation.get (S.Microdata.relation md) 0).(1)

(* --- dictionary ----------------------------------------------------------- *)

let test_dictionary () =
  let dict = S.Dictionary.create () in
  S.Dictionary.register_microdata dict (figure1 ());
  Alcotest.(check (list string)) "microdbs" [ "ig_survey" ]
    (S.Dictionary.microdbs dict);
  Alcotest.(check int) "entries" 9
    (List.length (S.Dictionary.attributes dict ~microdb:"ig_survey"));
  Alcotest.(check bool) "category recorded" true
    (S.Dictionary.category dict ~microdb:"ig_survey" ~attr:"area"
    = Some S.Microdata.Quasi_identifier);
  Alcotest.(check int) "uncategorized empty" 0
    (List.length (S.Dictionary.uncategorized dict));
  let facts = S.Dictionary.to_facts dict in
  Alcotest.(check bool) "cat facts present" true
    (List.exists (fun (p, _) -> String.equal p "cat") facts)

let test_dictionary_categories_for () =
  let dict = S.Dictionary.create () in
  let md = figure1 () in
  S.Dictionary.register_microdata dict md;
  match S.Dictionary.categories_for dict (S.Microdata.schema md) with
  | Some cats -> Alcotest.(check int) "all categorized" 9 (List.length cats)
  | None -> Alcotest.fail "expected full categorization"

(* --- categorization (Algorithm 1) ----------------------------------------- *)

let test_categorize_ig_schema () =
  let md = figure1 () in
  let result, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (S.Microdata.schema md)
  in
  let category attr =
    List.find_map
      (fun a ->
        if String.equal a.S.Categorize.attr attr then Some a.S.Categorize.category
        else None)
      result.S.Categorize.assigned
  in
  Alcotest.(check bool) "id is identifier" true
    (category "id" = Some S.Microdata.Identifier);
  Alcotest.(check bool) "area is quasi-identifier" true
    (category "area" = Some S.Microdata.Quasi_identifier);
  Alcotest.(check bool) "weight is weight" true
    (category "weight" = Some S.Microdata.Weight);
  Alcotest.(check bool) "growth is non-identifying" true
    (category "growth" = Some S.Microdata.Non_identifying)

let test_categorize_feedback_recursion () =
  (* Rule 3: once "sector" is categorized, the similar "sector_code" borrows
     from the feedback entry even though the original base lacks it. *)
  let schema = R.Schema.of_names ~name:"t" [ "sector"; "sector_code" ] in
  let result, base =
    S.Categorize.run
      ~experience:[ ("sector", S.Microdata.Quasi_identifier) ]
      schema
  in
  Alcotest.(check int) "both assigned" 2 (List.length result.S.Categorize.assigned);
  Alcotest.(check bool) "experience grew" true (List.length base > 1)

let test_categorize_unresolved () =
  let schema = R.Schema.of_names ~name:"t" [ "zzzyq" ] in
  let result, _ = S.Categorize.run ~experience:S.Categorize.builtin_experience schema in
  Alcotest.(check (list string)) "unresolved" [ "zzzyq" ] result.S.Categorize.unresolved

let test_categorize_microdata_end_to_end () =
  let rel = S.Microdata.relation (figure1 ()) in
  match S.Categorize.categorize_microdata rel with
  | Ok md ->
    Alcotest.(check bool) "weight found" true
      (S.Microdata.weight_position md <> None)
  | Error e -> Alcotest.fail e

let test_categorize_engine_agrees () =
  let md = figure1 () in
  let schema = S.Microdata.schema md in
  let native, _ =
    S.Categorize.run ~feedback:false
      ~experience:D.Ig_survey.figure4_experience schema
  in
  let reasoned =
    S.Categorize.run_via_engine ~experience:D.Ig_survey.figure4_experience schema
  in
  (* The engine derives every category reachable by Rule 2; the native path
     keeps the best-scoring one. The native choice must be among the
     engine's derivations (extra derivations are exactly the EGD conflicts
     Rule 4 would flag for inspection). *)
  List.iter
    (fun a ->
      let derived =
        List.filter_map
          (fun (attr, cat) ->
            if String.equal attr a.S.Categorize.attr then Some cat else None)
          reasoned
      in
      Alcotest.(check bool)
        ("native category of " ^ a.S.Categorize.attr ^ " derived by engine")
        true
        (List.mem a.S.Categorize.category derived))
    native.S.Categorize.assigned

(* --- risk measures, anchored to the paper's numbers ----------------------- *)

let test_figure1_reidentification_risks () =
  (* Paper, Section 2.2: tuple 15 (0.03), tuple 7 (0.003), tuple 4 (0.016). *)
  let md = figure1 () in
  let report = S.Risk.estimate S.Risk.Re_identification md in
  Alcotest.(check (float 0.002)) "tuple 15" (1.0 /. 30.0) report.S.Risk.risk.(14);
  Alcotest.(check (float 0.0005)) "tuple 7" (1.0 /. 300.0) report.S.Risk.risk.(6);
  Alcotest.(check (float 0.001)) "tuple 4" (1.0 /. 60.0) report.S.Risk.risk.(3)

let test_figure1_k_anonymity () =
  (* With the five quasi-identifiers, every Figure 1 combination is unique:
     all tuples are risky for any k >= 2. *)
  let md = figure1 () in
  let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  Alcotest.(check int) "all risky" 20
    (List.length (S.Risk.risky report ~threshold:0.5))

let test_figure5_k_anonymity () =
  let md = figure5 () in
  let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  Alcotest.(check (list int)) "risky tuples" [ 0; 5; 6 ]
    (S.Risk.risky report ~threshold:0.5);
  Alcotest.(check int) "tuple 2 frequency" 2 report.S.Risk.freq.(1)

let test_individual_risk_ordering () =
  let md = figure1 () in
  let naive = S.Risk.estimate (S.Risk.Individual S.Risk.Naive) md in
  let bf = S.Risk.estimate (S.Risk.Individual S.Risk.Benedetti_franconi) md in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "naive in [0,1]" true (r >= 0.0 && r <= 1.0);
      Alcotest.(check bool) "bf in [0,1]" true
        (bf.S.Risk.risk.(i) >= 0.0 && bf.S.Risk.risk.(i) <= 1.0))
    naive.S.Risk.risk

let test_suda_figure1_tuple20 () =
  (* Paper, Section 4.2: tuple 20 has two MSUs — {Sector=Financial} and
     {Employees=1000+, Residential Rev.=30-60}. *)
  let md = figure1 () in
  let msus = S.Risk_suda.find_msus ~max_size:5 md in
  let t20 = msus.(19) in
  Alcotest.(check (option int)) "min size" (Some 1) t20.S.Risk_suda.min_size;
  (* qi order: area(0), sector(1), employees(2), res_rev(3), exp_rev(4) *)
  Alcotest.(check bool) "sector singleton is an MSU" true
    (List.exists (fun s -> s = [| 1 |]) t20.S.Risk_suda.msus);
  Alcotest.(check bool) "employees+res_rev is an MSU" true
    (List.exists (fun s -> s = [| 2; 3 |]) t20.S.Risk_suda.msus);
  (* The paper counts exactly 2 MSUs for tuple 20 over the four attributes
     of its μ¹ example (Area, Sector, Employees, Residential Rev.). *)
  let md4 =
    S.Microdata.make
      (S.Microdata.relation md)
      (List.map
         (fun (attr, cat) ->
           if String.equal attr "export_revenue" then
             (attr, S.Microdata.Non_identifying)
           else (attr, cat))
         (S.Microdata.categories md))
  in
  let t20' = (S.Risk_suda.find_msus ~max_size:4 md4).(19) in
  Alcotest.(check int) "exactly 2 MSUs over the paper's four attributes" 2
    (List.length t20'.S.Risk_suda.msus)

let test_suda_minimality () =
  let md = figure1 () in
  let msus = S.Risk_suda.find_msus ~max_size:5 md in
  (* No MSU of a tuple may be a subset of another MSU of the same tuple. *)
  Array.iter
    (fun t ->
      let masks =
        List.map
          (fun s -> Array.fold_left (fun acc p -> acc lor (1 lsl p)) 0 s)
          t.S.Risk_suda.msus
      in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i <> j then
                Alcotest.(check bool) "minimal" false (a land b = a))
            masks)
        masks)
    msus

let test_suda_risk_thresholds () =
  let md = figure1 () in
  let risk1 = S.Risk_suda.estimate ~max_msu_size:3 ~threshold_size:1 md in
  (* threshold 1 means an MSU of size < 1 — impossible, nothing risky. *)
  Array.iter (fun r -> Alcotest.(check (float 0.0)) "none" 0.0 r) risk1;
  let risk_big = S.Risk_suda.estimate ~max_msu_size:3 ~threshold_size:4 md in
  Alcotest.(check bool) "some risky at threshold 4" true
    (Array.exists (fun r -> r = 1.0) risk_big)

let test_suda_dis_scores () =
  let md = figure1 () in
  let scores = S.Risk_suda.dis_scores md in
  Array.iter
    (fun s -> Alcotest.(check bool) "in [0,1]" true (s >= 0.0 && s <= 1.0))
    scores;
  (* Tuple 20 (a special unique on a single attribute) must outscore a tuple
     with no small MSU. *)
  Alcotest.(check bool) "tuple 20 scored" true (scores.(19) > 0.0)

let test_risk_report_rendering () =
  let md = figure1 () in
  let report = S.Risk.estimate S.Risk.Re_identification md in
  let text = Format.asprintf "%a" (S.Risk.pp_report ~limit:3) (md, report) in
  Alcotest.(check bool) "mentions global risk" true
    (String.length text > 0
    && Astring_contains.contains text "global risk")

(* --- suppression and the Figure 5 worked example -------------------------- *)

let test_suppress_basics () =
  let md = S.Microdata.copy (figure5 ()) in
  let ids = Vadasa_base.Ids.create () in
  (match S.Suppression.suppress ids md ~tuple:0 ~attr:"sector" with
  | Some old -> Alcotest.check value "old value" (Value.Str "Textiles") old
  | None -> Alcotest.fail "expected suppression");
  Alcotest.(check bool) "now null" true
    (Value.is_null (R.Relation.get (S.Microdata.relation md) 0).(2));
  (* Second suppression of the same cell is a no-op (Algorithm 7's guard). *)
  Alcotest.(check bool) "idempotent" true
    (S.Suppression.suppress ids md ~tuple:0 ~attr:"sector" = None);
  Alcotest.(check bool) "identifier rejected" true
    (try
       ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"id");
       false
     with Invalid_argument _ -> true)

let test_figure5_suppression_effect () =
  (* Suppressing tuple 1's Sector lifts its frequency from 1 to 5 and
     tuples 2-5 from 2 to 3 (Figure 5b). *)
  let md = S.Microdata.copy (figure5 ()) in
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"sector");
  let stats = S.Risk.group_stats md in
  Alcotest.(check int) "tuple 1 freq" 5 stats.R.Algebra.Group_stats.freq.(0);
  Alcotest.(check int) "tuple 2 freq" 3 stats.R.Algebra.Group_stats.freq.(1);
  Alcotest.(check int) "tuple 6 freq" 1 stats.R.Algebra.Group_stats.freq.(5)

(* --- hierarchy and recoding ------------------------------------------------ *)

let test_hierarchy_basics () =
  let h = D.Ig_survey.figure5_hierarchy () in
  Alcotest.(check (option string)) "attr type" (Some "city")
    (S.Hierarchy.type_of_attr h "area");
  Alcotest.check value "Milano rolls to North" (Value.Str "North")
    (Option.get (S.Hierarchy.parent h (Value.Str "Milano")));
  Alcotest.(check int) "height of area" 2 (S.Hierarchy.height h ~attr:"area");
  Alcotest.(check (list (module Value))) "chain"
    [ Value.Str "Milano"; Value.Str "North"; Value.Str "Italy" ]
    (S.Hierarchy.generalization_chain h (Value.Str "Milano"));
  Alcotest.(check int) "level of North" 1
    (S.Hierarchy.level_of_value h (Value.Str "North"))

let test_global_recoding_figure5 () =
  (* Recoding Area globally merges Milano and Torino into North, giving
     tuples 6 and 7 frequency 2 (Figure 5b, right-hand effect). *)
  let md = S.Microdata.copy (figure5 ()) in
  let h = D.Ig_survey.figure5_hierarchy () in
  (match S.Recoding.recode_tuple h md ~tuple:5 ~attr:"area" with
  | Some step ->
    Alcotest.check value "to North" (Value.Str "North") step.S.Recoding.to_value;
    Alcotest.(check int) "only Milano changed" 1 step.S.Recoding.cells_changed
  | None -> Alcotest.fail "expected recoding");
  ignore (S.Recoding.recode_tuple h md ~tuple:6 ~attr:"area");
  let stats = S.Risk.group_stats md in
  Alcotest.(check int) "tuple 6 freq" 2 stats.R.Algebra.Group_stats.freq.(5);
  Alcotest.(check int) "tuple 7 freq" 2 stats.R.Algebra.Group_stats.freq.(6)

let test_recode_attr_fully () =
  let md = S.Microdata.copy (figure5 ()) in
  let h = D.Ig_survey.figure5_hierarchy () in
  let steps = S.Recoding.recode_attr_fully h md ~attr:"area" in
  Alcotest.(check int) "three distinct values recoded" 3 (List.length steps);
  let areas = R.Relation.column (S.Microdata.relation md) "area" in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "regional now" true
        (List.mem v [ Value.Str "North"; Value.Str "Center"; Value.Str "South" ]))
    areas

(* --- heuristics ------------------------------------------------------------ *)

let test_most_risky_qi_figure5 () =
  (* Paper, Section 4.4: for tuple 1 of Figure 5a, suppressing Sector
     removes every sample unique (frequency 5), so it must be chosen. *)
  let md = figure5 () in
  let cache = S.Heuristics.build_cache md in
  let chosen =
    S.Heuristics.choose_qi S.Heuristics.Most_risky_qi cache md ~tuple:0
      ~candidates:(S.Suppression.suppressible md ~tuple:0)
  in
  Alcotest.(check (option string)) "sector chosen" (Some "sector") chosen

let test_tuple_order_less_significant () =
  let md = figure1 () in
  let risk = Array.make 20 1.0 in
  let ordered =
    S.Heuristics.order_tuples S.Heuristics.Less_significant_first md ~risk
      [ 0; 14; 6 ]
  in
  (* weights: t0=230, t14=30, t6=300 -> ascending: 14, 0, 6 *)
  Alcotest.(check (list int)) "ascending weight" [ 14; 0; 6 ] ordered

let test_tuple_order_most_risky () =
  let md = figure1 () in
  let risk = Array.init 20 (fun i -> float_of_int i /. 20.0) in
  let ordered =
    S.Heuristics.order_tuples S.Heuristics.Most_risky_first md ~risk [ 3; 9; 1 ]
  in
  Alcotest.(check (list int)) "descending risk" [ 9; 3; 1 ] ordered

(* --- the anonymization cycle ----------------------------------------------- *)

let test_cycle_figure5_converges () =
  let md = figure5 () in
  let outcome = S.Cycle.run md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  Alcotest.(check int) "three risky initially" 3 outcome.S.Cycle.risky_initial;
  Alcotest.(check bool) "few nulls" true (outcome.S.Cycle.nulls_injected <= 3);
  (* Anonymized DB passes 2-anonymity under maybe-match. *)
  let report =
    S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) outcome.S.Cycle.anonymized
  in
  Alcotest.(check int) "no residual risk" 0
    (List.length (S.Risk.risky report ~threshold:0.5));
  (* The input microdata is untouched. *)
  Alcotest.(check int) "input unchanged" 0
    (R.Relation.count_nulls (S.Microdata.relation md))

let test_cycle_first_suppression_is_sector () =
  let md = figure5 () in
  let outcome = S.Cycle.run md in
  match
    List.find_opt (fun a -> a.S.Cycle.tuple = 0) outcome.S.Cycle.trace
  with
  | Some a -> Alcotest.(check string) "sector suppressed" "sector" a.S.Cycle.attr
  | None -> Alcotest.fail "tuple 0 should have been anonymized"

let test_cycle_k_monotone () =
  let md = D.Suite.load ~scale:0.04 "R25A4U" in
  let nulls k =
    let config =
      { S.Cycle.default_config with S.Cycle.measure = S.Risk.K_anonymity { k } }
    in
    (S.Cycle.run ~config md).S.Cycle.nulls_injected
  in
  let n2 = nulls 2 and n5 = nulls 5 in
  Alcotest.(check bool) "k=5 needs at least as many nulls as k=2" true (n5 >= n2);
  Alcotest.(check bool) "some work done" true (n2 > 0)

let test_cycle_standard_semantics_leaves_unresolved () =
  (* Under the standard null semantics, suppression cannot reduce risk:
     the cycle exhausts the tuple's attributes and reports it unresolved
     (the Figure 7c proliferation). *)
  let md = figure5 () in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.semantics = R.Null_semantics.Standard;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "did not converge" false outcome.S.Cycle.converged;
  Alcotest.(check bool) "nulls proliferate" true
    (outcome.S.Cycle.nulls_injected > 3);
  Alcotest.(check bool) "unresolved tuples reported" true
    (outcome.S.Cycle.unresolved <> [])

let test_cycle_with_recoding () =
  let md = figure5 () in
  let h = D.Ig_survey.figure5_hierarchy () in
  let config =
    { S.Cycle.default_config with S.Cycle.method_ = S.Cycle.Recode_then_suppress h }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let report =
    S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) outcome.S.Cycle.anonymized
  in
  Alcotest.(check int) "safe" 0 (List.length (S.Risk.risky report ~threshold:0.5))

let test_cycle_reidentification_measure () =
  let md = figure1 () in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure = S.Risk.Re_identification;
      threshold = 0.02;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let report =
    S.Risk.estimate S.Risk.Re_identification outcome.S.Cycle.anonymized
  in
  Alcotest.(check int) "under threshold" 0
    (List.length (S.Risk.risky report ~threshold:0.02))

let test_cycle_per_round_limit () =
  let md = figure5 () in
  let config = { S.Cycle.default_config with S.Cycle.per_round_limit = Some 1 } in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "still converges" true outcome.S.Cycle.converged;
  Alcotest.(check bool) "more rounds" true (outcome.S.Cycle.rounds >= 3)

(* --- audit trail -------------------------------------------------------------- *)

let test_audit_one_event_per_round () =
  let md = figure5 () in
  let recorder = S.Audit.recorder () in
  let outcome = S.Cycle.run ~audit:recorder md in
  let events = S.Audit.events recorder in
  Alcotest.(check int) "one event per cycle round" outcome.S.Cycle.rounds
    (List.length events);
  List.iteri
    (fun i e ->
      Alcotest.(check int) "rounds consecutive from 1" (i + 1) e.S.Audit.round)
    events;
  (* The converged final round applied nothing and its post-state is its
     own estimate: zero violations left. *)
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let last = List.nth events (List.length events - 1) in
  Alcotest.(check string) "final round applies nothing" "none"
    (S.Audit.method_of_event last);
  Alcotest.(check (option int)) "no violations remain" (Some 0)
    last.S.Audit.violations_after;
  (* Suppression counts in the trail reconcile with the outcome. *)
  let total_suppressed =
    List.fold_left (fun acc e -> acc + e.S.Audit.suppressed) 0 events
  in
  Alcotest.(check int) "trail accounts for every null"
    outcome.S.Cycle.nulls_injected total_suppressed;
  (* The trail's final loss is the outcome's. *)
  Alcotest.(check (float 1e-9)) "final info loss" outcome.S.Cycle.info_loss
    last.S.Audit.info_loss_after

let test_audit_post_state_patched () =
  let md = figure5 () in
  let recorder = S.Audit.recorder () in
  ignore (S.Cycle.run ~audit:recorder md);
  let events = S.Audit.events recorder in
  (* Every round's post-state is known: intermediate rounds are patched
     by the next estimate, the final (converged) round by [finish]. *)
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "round %d post-state known" e.S.Audit.round)
        true
        (e.S.Audit.violations_after <> None && e.S.Audit.max_risk_after <> None);
      Alcotest.(check bool)
        (Printf.sprintf "round %d loss monotone" e.S.Audit.round)
        true
        (e.S.Audit.info_loss_after >= e.S.Audit.info_loss_before))
    events;
  (* Round N's post-state is round N+1's pre-state. *)
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check (option int))
        (Printf.sprintf "round %d chains to round %d" a.S.Audit.round
           b.S.Audit.round)
        (Some b.S.Audit.risky_before) a.S.Audit.violations_after;
      pairwise rest
    | _ -> ()
  in
  pairwise events

let test_audit_jsonl_round_trips () =
  let md = figure5 () in
  let recorder = S.Audit.recorder () in
  ignore (S.Cycle.run ~audit:recorder md);
  let events = S.Audit.events recorder in
  let lines =
    String.split_on_char '\n' (S.Audit.to_jsonl events)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length events)
    (List.length lines);
  List.iter
    (fun line ->
      match Vadasa_base.Json.of_string line with
      | Ok (Vadasa_base.Json.Obj fields) ->
        List.iter
          (fun key ->
            Alcotest.(check bool)
              (Printf.sprintf "field %s present" key)
              true
              (List.mem_assoc key fields))
          [
            "event"; "round"; "risky_before"; "max_risk_before";
            "mean_risk_before"; "method"; "suppressed"; "recoded";
            "cells_affected"; "blocked"; "skipped"; "violations_after";
            "max_risk_after"; "info_loss_before"; "info_loss_after";
            "info_loss_delta";
          ]
      | Ok _ -> Alcotest.fail "audit line is not a JSON object"
      | Error e -> Alcotest.failf "audit line does not parse: %s" e)
    lines

(* --- info loss -------------------------------------------------------------- *)

let test_info_loss_metrics () =
  Alcotest.(check (float 1e-9)) "paper metric" 0.25
    (S.Info_loss.suppression_loss ~nulls_injected:3 ~risky_tuples:3 ~qi_count:4);
  Alcotest.(check (float 1e-9)) "no risky" 0.0
    (S.Info_loss.suppression_loss ~nulls_injected:0 ~risky_tuples:0 ~qi_count:4);
  let md = S.Microdata.copy (figure5 ()) in
  Alcotest.(check (float 1e-9)) "clean data" 0.0 (S.Info_loss.cell_suppression_rate md);
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"sector");
  Alcotest.(check (float 1e-6)) "one cell of 28" (1.0 /. 28.0)
    (S.Info_loss.cell_suppression_rate md)

let test_generalization_loss () =
  let md = S.Microdata.copy (figure5 ()) in
  let h = D.Ig_survey.figure5_hierarchy () in
  let before = S.Info_loss.generalization_loss h md in
  ignore (S.Recoding.recode_attr_fully h md ~attr:"area");
  let after = S.Info_loss.generalization_loss h md in
  Alcotest.(check bool) "loss grows with recoding" true (after > before)

(* --- business knowledge (Algorithm 9) --------------------------------------- *)

let own owner owned share = { S.Business.owner; owned; share }

let test_control_direct_and_transitive () =
  let pairs =
    S.Business.control_closure
      [ own "a" "b" 0.6; own "b" "c" 0.7; own "x" "y" 0.4 ]
  in
  Alcotest.(check bool) "a controls b" true (List.mem ("a", "b") pairs);
  Alcotest.(check bool) "b controls c" true (List.mem ("b", "c") pairs);
  Alcotest.(check bool) "a controls c transitively" true
    (List.mem ("a", "c") pairs);
  Alcotest.(check bool) "x does not control y" false (List.mem ("x", "y") pairs)

let test_control_joint () =
  (* a holds 40% of c directly and controls b which holds 20%: jointly 60%. *)
  let pairs =
    S.Business.control_closure
      [ own "a" "b" 0.8; own "a" "c" 0.4; own "b" "c" 0.2 ]
  in
  Alcotest.(check bool) "joint control" true (List.mem ("a", "c") pairs)

let test_control_engine_agrees () =
  let graphs =
    [
      [ own "a" "b" 0.6; own "b" "c" 0.7 ];
      [ own "a" "b" 0.8; own "a" "c" 0.4; own "b" "c" 0.2 ];
      [ own "a" "b" 0.3; own "c" "b" 0.3 ];
      [ own "a" "b" 0.51; own "b" "a" 0.49 ];
    ]
  in
  List.iter
    (fun g ->
      let native = S.Business.control_closure g in
      let reasoned = S.Business.control_closure_via_engine g in
      Alcotest.(check (list (pair string string))) "closures agree" native reasoned)
    graphs

let test_clusters_and_propagation () =
  let clusters = S.Business.clusters [ ("a", "b"); ("b", "c"); ("x", "y") ] in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  let risks = [| 0.5; 0.5; 0.0; 0.9 |] in
  let entity_of = function
    | 0 -> Some "a"
    | 1 -> Some "b"
    | 2 -> Some "solo"
    | 3 -> Some "x"
    | _ -> None
  in
  let propagated = S.Business.propagate ~entity_of ~clusters risks in
  Alcotest.(check (float 1e-9)) "cluster combines" 0.75 propagated.(0);
  Alcotest.(check (float 1e-9)) "solo untouched" 0.0 propagated.(2);
  Alcotest.(check (float 1e-9)) "y missing, x keeps own" 0.9 propagated.(3)

let test_enhanced_cycle_injects_more_nulls () =
  (* Figure 7d: more control relationships -> more injected nulls. *)
  let md = D.Suite.load ~scale:0.02 "R25A4W" in
  let rng = Vadasa_stats.Rng.create ~seed:11 in
  let ownerships =
    D.Ownership_gen.generate rng md ~id_attr:"id" ~edges:120 ()
  in
  let base = S.Cycle.run md in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.risk_transform =
        Some (S.Business.risk_transform ~id_attr:"id" ~ownerships);
    }
  in
  let enhanced = S.Cycle.run ~config md in
  Alcotest.(check bool) "relationships cannot reduce the nulls" true
    (enhanced.S.Cycle.nulls_injected >= base.S.Cycle.nulls_injected)

(* --- explainability ---------------------------------------------------------- *)

let test_explain_action () =
  let md = figure5 () in
  let outcome = S.Cycle.run md in
  match outcome.S.Cycle.trace with
  | a :: _ ->
    let text = S.Explain.action outcome.S.Cycle.anonymized a in
    Alcotest.(check bool) "mentions round" true
      (Astring_contains.contains text "round");
    Alcotest.(check bool) "mentions frequency" true
      (Astring_contains.contains text "frequency")
  | [] -> Alcotest.fail "expected actions"

let test_explain_trace_and_summary () =
  let md = figure5 () in
  let outcome = S.Cycle.run md in
  let text = S.Explain.trace md outcome in
  Alcotest.(check bool) "narrative nonempty" true (String.length text > 100);
  let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  let summary = S.Explain.summary md report ~threshold:0.5 in
  Alcotest.(check bool) "risky count present" true
    (Astring_contains.contains summary "risky tuples: 3")

(* --- the reasoned path (engine) ---------------------------------------------- *)

let test_engine_k_anonymity_agrees () =
  let md = figure5 () in
  let native = (S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md).S.Risk.risk in
  let reasoned = S.Vadalog_bridge.risk_via_engine (S.Risk.K_anonymity { k = 2 }) md in
  Alcotest.(check (array (float 1e-9))) "risks agree" native reasoned

let test_engine_reidentification_agrees () =
  let md = figure1 () in
  let native = (S.Risk.estimate S.Risk.Re_identification md).S.Risk.risk in
  let reasoned = S.Vadalog_bridge.risk_via_engine S.Risk.Re_identification md in
  Alcotest.(check (array (float 1e-6))) "risks agree" native reasoned

let test_engine_individual_agrees () =
  let md = figure1 () in
  let native = (S.Risk.estimate (S.Risk.Individual S.Risk.Naive) md).S.Risk.risk in
  let reasoned =
    S.Vadalog_bridge.risk_via_engine (S.Risk.Individual S.Risk.Naive) md
  in
  Alcotest.(check (array (float 1e-6))) "risks agree" native reasoned

let test_engine_suda_agrees () =
  let md = figure5 () in
  let native =
    S.Risk_suda.estimate ~max_msu_size:2 ~threshold_size:3 md
  in
  let reasoned =
    S.Vadalog_bridge.risk_via_engine
      (S.Risk.Suda { max_msu_size = 2; threshold_size = 3 })
      md
  in
  Alcotest.(check (array (float 1e-9))) "risks agree" native reasoned

let test_engine_risk_explanation () =
  let md = figure5 () in
  match
    S.Vadalog_bridge.explain_risk (S.Risk.K_anonymity { k = 2 }) md ~tuple:0
  with
  | Some text ->
    Alcotest.(check bool) "provenance mentions the rule" true
      (Astring_contains.contains text "k_anonymity_risk")
  | None -> Alcotest.fail "expected an explanation"

let test_maybe_k_anonymity_program () =
  (* The null-tolerant declarative k-anonymity must agree with the native
     maybe-match estimate on suppressed data. *)
  let md = S.Microdata.copy (figure5 ()) in
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"sector");
  let native =
    (S.Risk.estimate ~semantics:R.Null_semantics.Maybe_match
       (S.Risk.K_anonymity { k = 2 })
       md)
      .S.Risk.risk
  in
  let program =
    Vadasa_vadalog.Program.union
      (Vadasa_vadalog.Parser.parse (S.Vadalog_bridge.k_anonymity_maybe_program ~k:2))
      (Vadasa_vadalog.Program.make ~facts:(S.Vadalog_bridge.microdata_facts md) [])
  in
  let engine = Vadasa_vadalog.Engine.create program in
  Vadasa_vadalog.Engine.run engine;
  let reasoned = Array.make (S.Microdata.cardinal md) 0.0 in
  List.iter
    (fun fact ->
      match fact with
      | [| Value.Int i; r |] ->
        reasoned.(i) <- Float.max reasoned.(i) (Option.get (Value.as_float r))
      | _ -> ())
    (Vadasa_vadalog.Engine.facts engine "riskoutput");
  Alcotest.(check (array (float 1e-9))) "maybe-match paths agree" native reasoned

let test_enhanced_risk_via_engine () =
  (* Algorithm 9 fully declarative: k-anonymity + control closure + cluster
     propagation on the engine must equal the native measure + transform. *)
  let md = D.Suite.load ~scale:0.008 "R25A4U" in
  let rng = Vadasa_stats.Rng.create ~seed:41 in
  let ownerships = D.Ownership_gen.generate rng md ~id_attr:"id" ~edges:20 () in
  let native =
    let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
    S.Business.risk_transform ~id_attr:"id" ~ownerships md report.S.Risk.risk
  in
  let reasoned =
    S.Vadalog_bridge.enhanced_risk_via_engine ~k:2 md ~id_attr:"id" ~ownerships
  in
  Alcotest.(check (array (float 1e-9))) "algorithm 9 paths agree" native reasoned;
  (* The graph must actually link something, or the test is vacuous. *)
  Alcotest.(check bool) "clusters exist" true
    (S.Business.clusters (S.Business.control_closure ownerships) <> [])

let test_reasoned_cycle () =
  let md = figure5 () in
  let outcome = S.Vadalog_bridge.reasoned_cycle md in
  Alcotest.(check bool) "some suppression happened" true
    (outcome.S.Vadalog_bridge.nulls_injected > 0);
  (* The null-tolerant reasoned cycle must not over-suppress: Figure 5
     needs at most one null per risky tuple. *)
  Alcotest.(check bool) "minimal suppression" true
    (outcome.S.Vadalog_bridge.nulls_injected <= 3);
  let report =
    S.Risk.estimate (S.Risk.K_anonymity { k = 2 })
      outcome.S.Vadalog_bridge.anonymized
  in
  Alcotest.(check int) "anonymized is 2-anonymous" 0
    (List.length (S.Risk.risky report ~threshold:0.5))

let test_monte_carlo_unsupported_on_engine () =
  let md = figure5 () in
  Alcotest.(check bool) "raises Unsupported" true
    (try
       ignore
         (S.Vadalog_bridge.risk_via_engine
            (S.Risk.Individual (S.Risk.Monte_carlo { samples = 10; seed = 1 }))
            md);
       false
     with S.Vadalog_bridge.Unsupported _ -> true)

(* --- declarative anonymization programs on the engine ----------------------- *)

module VL = Vadasa_vadalog

let test_suppression_program_on_engine () =
  (* Algorithm 7 as a Vadalog program: the existential Z materializes as a
     labelled null inside the rebuilt collection. *)
  let source =
    S.Suppression.program
    ^ {|
      tuple(1, {(area, roma); (sector, textiles)}).
      anonymize(1, sector).
    |}
  in
  let engine = VL.Engine.create (VL.Parser.parse source) in
  VL.Engine.run engine;
  match VL.Engine.facts engine "tuple_s" with
  | [ [| Value.Int 1; Value.Coll pairs |] ] ->
    let sector =
      List.find_map
        (function
          | Value.Pair (Value.Str "sector", v) -> Some v
          | _ -> None)
        pairs
    in
    Alcotest.(check bool) "sector suppressed to a null" true
      (match sector with Some v -> Value.is_null v | None -> false);
    let area =
      List.find_map
        (function Value.Pair (Value.Str "area", v) -> Some v | _ -> None)
        pairs
    in
    Alcotest.(check (option (module Value))) "area kept"
      (Some (Value.Str "roma")) area
  | facts ->
    Alcotest.fail
      (Printf.sprintf "expected one suppressed tuple, got %d" (List.length facts))

let test_suppression_program_null_guard () =
  (* Re-suppressing an already-null value must not fire (Algorithm 7's
     guard). *)
  let source =
    S.Suppression.program
    ^ {|
      tuple(1, {(sector, #5)}).
      anonymize(1, sector).
    |}
  in
  let engine = VL.Engine.create (VL.Parser.parse source) in
  VL.Engine.run engine;
  Alcotest.(check int) "no derivation" 0
    (List.length (VL.Engine.facts engine "tuple_s"))

let test_recoding_program_on_engine () =
  (* Algorithm 8 as a Vadalog program over the hierarchy facts. *)
  let h = D.Ig_survey.figure5_hierarchy () in
  let facts =
    S.Hierarchy.to_facts h
    @ [
        ( "tuple",
          [|
            Value.Int 1;
            Value.coll
              [
                Value.pair (Value.Str "area") (Value.Str "Milano");
                Value.pair (Value.Str "sector") (Value.Str "Construction");
              ];
          |] );
        ("anonymize", [| Value.Int 1; Value.Str "area" |]);
      ]
  in
  let program =
    VL.Program.union
      (VL.Parser.parse S.Recoding.program)
      (VL.Program.make ~facts [])
  in
  let engine = VL.Engine.create program in
  VL.Engine.run engine;
  match VL.Engine.facts engine "tuple_r" with
  | [ [| Value.Int 1; coll |] ] ->
    Alcotest.(check (option (module Value))) "Milano -> North"
      (Some (Value.Str "North"))
      (Value.coll_assoc coll (Value.Str "area"))
  | facts ->
    Alcotest.fail
      (Printf.sprintf "expected one recoded tuple, got %d" (List.length facts))

(* --- more cycle behaviours ---------------------------------------------------- *)

let test_share_nulls_ablation () =
  let md = D.Suite.load ~scale:0.04 "R25A4U" in
  let run share_nulls =
    let config = { S.Cycle.default_config with S.Cycle.share_nulls } in
    S.Cycle.run ~config md
  in
  let shared = run true and unshared = run false in
  Alcotest.(check bool) "sharing cannot need more nulls" true
    (shared.S.Cycle.nulls_injected <= unshared.S.Cycle.nulls_injected);
  (* Both must still converge to the same safety guarantee. *)
  List.iter
    (fun outcome ->
      let report =
        S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) outcome.S.Cycle.anonymized
      in
      Alcotest.(check int) "2-anonymous" 0
        (List.length (S.Risk.risky report ~threshold:0.5)))
    [ shared; unshared ]

let test_cycle_individual_measure_converges () =
  let md = D.Suite.load ~scale:0.02 "R25A4U" in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure = S.Risk.Individual S.Risk.Benedetti_franconi;
      threshold = 0.3;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let report =
    S.Risk.estimate (S.Risk.Individual S.Risk.Benedetti_franconi)
      outcome.S.Cycle.anonymized
  in
  Alcotest.(check int) "under threshold" 0
    (List.length (S.Risk.risky report ~threshold:0.3))

let test_cycle_suda_measure_converges () =
  let md = D.Ig_survey.figure1 () in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure = S.Risk.Suda { max_msu_size = 2; threshold_size = 3 };
    }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let residual =
    S.Risk_suda.estimate ~max_msu_size:2 ~threshold_size:3
      outcome.S.Cycle.anonymized
  in
  Array.iter
    (fun r -> Alcotest.(check (float 0.0)) "no small MSUs left" 0.0 r)
    residual

let test_cycle_max_rounds_respected () =
  let md = D.Suite.load ~scale:0.02 "R25A4V" in
  let config =
    { S.Cycle.default_config with S.Cycle.max_rounds = 1; per_round_limit = Some 3 }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check int) "one round" 1 outcome.S.Cycle.rounds;
  Alcotest.(check bool) "at most 3 actions" true
    (List.length outcome.S.Cycle.trace <= 3)

let test_custom_measure () =
  (* User-delegated λ: flag combinations below a weight floor (a crude
     context-aware criterion a business expert might plug in). *)
  let floor_measure =
    S.Risk.Custom
      {
        name = "weight floor 100";
        score =
          (fun ~freq:_ ~weight_sum -> if weight_sum < 100.0 then 1.0 else 0.0);
      }
  in
  let md = figure1 () in
  let report = S.Risk.estimate floor_measure md in
  (* Tuples 4, 5, 15 of Figure 1 have unique combinations with weights 60,
     50, 30 < 100; tuples 3, 6, 11 weigh 70; 12, 20 weigh 90; 14 has 104. *)
  Alcotest.(check bool) "tuple 15 flagged" true (report.S.Risk.risk.(14) = 1.0);
  Alcotest.(check bool) "tuple 7 safe" true (report.S.Risk.risk.(6) = 0.0);
  (* The cycle accepts the custom measure and converges. *)
  let config = { S.Cycle.default_config with S.Cycle.measure = floor_measure } in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let residual = S.Risk.estimate floor_measure outcome.S.Cycle.anonymized in
  Alcotest.(check int) "safe" 0
    (List.length (S.Risk.risky residual ~threshold:0.5));
  (* But it cannot be shipped to the engine as-is. *)
  Alcotest.(check bool) "engine unsupported" true
    (try
       ignore (S.Vadalog_bridge.risk_via_engine floor_measure md);
       false
     with S.Vadalog_bridge.Unsupported _ -> true)

(* --- the Datafly baseline ------------------------------------------------------ *)

let test_datafly_reaches_k_anonymity () =
  let md = D.Suite.load ~scale:0.04 "R25A4U" in
  let hierarchy = D.Generator.synthetic_hierarchy md in
  let outcome = S.Baseline_datafly.run ~hierarchy md in
  Alcotest.(check bool) "satisfied" true outcome.S.Baseline_datafly.satisfied;
  Alcotest.(check bool) "k-anonymous" true
    (S.Baseline_datafly.k_anonymous outcome.S.Baseline_datafly.anonymized);
  Alcotest.(check bool) "generalized something" true
    (outcome.S.Baseline_datafly.cells_generalized > 0);
  (* The input must be untouched. *)
  Alcotest.(check int) "input intact" 0
    (R.Relation.count_nulls (S.Microdata.relation md))

let test_datafly_figure5 () =
  (* On Figure 5 with only the geographic hierarchy, Datafly can climb
     Area but not the other attributes: the lone Textiles tuple must end
     up suppressed. *)
  let md = figure5 () in
  let hierarchy = D.Ig_survey.figure5_hierarchy () in
  let outcome = S.Baseline_datafly.run ~hierarchy ~max_suppression:0.2 md in
  Alcotest.(check bool) "tuple 0 suppressed" true
    (List.mem 0 outcome.S.Baseline_datafly.suppressed_tuples);
  Alcotest.(check bool) "k-anonymous afterwards" true
    (S.Baseline_datafly.k_anonymous outcome.S.Baseline_datafly.anonymized)

let test_datafly_vs_cycle_utility () =
  (* Vada-SA's cell-level suppression must touch no more cells than
     Datafly's whole-column generalization on unbalanced data. *)
  let md = D.Suite.load ~scale:0.02 "R25A4U" in
  let hierarchy = D.Generator.synthetic_hierarchy md in
  let cycle = S.Cycle.run md in
  let datafly = S.Baseline_datafly.run ~hierarchy md in
  let cycle_touched = cycle.S.Cycle.nulls_injected in
  let datafly_touched =
    datafly.S.Baseline_datafly.cells_generalized
    + List.length datafly.S.Baseline_datafly.suppressed_tuples
      * List.length (S.Microdata.quasi_identifiers md)
  in
  Alcotest.(check bool)
    (Printf.sprintf "cycle %d <= datafly %d" cycle_touched datafly_touched)
    true
    (cycle_touched <= datafly_touched)

(* --- hierarchy and dictionary edge cases -------------------------------------- *)

let test_hierarchy_chain_guard () =
  (* A cyclic IsA chain must not loop forever. *)
  let h = S.Hierarchy.create () in
  S.Hierarchy.add_is_a h ~child:(Value.Str "a") ~parent:(Value.Str "b");
  S.Hierarchy.add_is_a h ~child:(Value.Str "b") ~parent:(Value.Str "a");
  let chain = S.Hierarchy.generalization_chain h (Value.Str "a") in
  Alcotest.(check bool) "bounded" true (List.length chain <= 33)

let test_hierarchy_missing_parent () =
  let h = D.Ig_survey.figure5_hierarchy () in
  Alcotest.(check bool) "unknown value" true
    (S.Hierarchy.parent h (Value.Str "Atlantis") = None);
  Alcotest.(check int) "unknown attr height" 0
    (S.Hierarchy.height h ~attr:"nope")

let test_dictionary_errors () =
  let dict = S.Dictionary.create () in
  S.Dictionary.register_microdata dict (figure1 ());
  Alcotest.(check bool) "double registration rejected" true
    (try
       S.Dictionary.register dict (S.Microdata.schema (figure1 ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown attr rejected" true
    (try
       S.Dictionary.set_category dict ~microdb:"ig_survey" ~attr:"zzz"
         S.Microdata.Weight;
       false
     with Invalid_argument _ -> true)

let test_business_empty_and_self () =
  Alcotest.(check (list (pair string string))) "empty graph" []
    (S.Business.control_closure []);
  Alcotest.(check int) "no clusters" 0 (List.length (S.Business.clusters []));
  (* Self-ownership is inert. *)
  let pairs = S.Business.control_closure [ own "a" "a" 0.9 ] in
  Alcotest.(check bool) "self pair allowed but no propagation" true
    (List.for_all (fun (x, y) -> x = "a" && y = "a") pairs)

let test_explain_tuple_risk_wording () =
  let md = figure1 () in
  let report = S.Risk.estimate S.Risk.Re_identification md in
  let text = S.Explain.tuple_risk md report ~tuple:14 in
  Alcotest.(check bool) "names the combination" true
    (Astring_contains.contains text "Public Service");
  Alcotest.(check bool) "names the weight" true
    (Astring_contains.contains text "30.0")

let test_suda_dis_ordering () =
  (* A tuple with a size-1 MSU must outscore one whose smallest MSU is
     larger. *)
  let md = figure1 () in
  let scores = S.Risk_suda.dis_scores ~max_size:3 md in
  let msus = S.Risk_suda.find_msus ~max_size:3 md in
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          match t.S.Risk_suda.min_size, u.S.Risk_suda.min_size with
          | Some 1, Some b when b >= 3 ->
            Alcotest.(check bool)
              (Printf.sprintf "tuple %d outscores tuple %d" i j)
              true
              (scores.(i) > scores.(j))
          | _ -> ())
        msus)
    msus

(* --- properties --------------------------------------------------------------- *)

let gen_microdata =
  QCheck2.Gen.(
    let* n = int_range 5 40 in
    let* seed = int_range 1 10_000 in
    let* dist = oneofl [ D.Generator.W; D.Generator.U; D.Generator.V ] in
    return (n, seed, dist))

let md_of (n, seed, dist) =
  D.Generator.generate
    { D.Generator.name = "prop"; tuples = n; qi_count = 3; distribution = dist; seed }

let prop_engine_matches_native_k_anonymity =
  QCheck2.Test.make ~name:"engine k-anonymity equals native on random microdata"
    ~count:15 gen_microdata
    (fun params ->
      let md = md_of params in
      let native = (S.Risk.estimate (S.Risk.K_anonymity { k = 3 }) md).S.Risk.risk in
      let reasoned =
        S.Vadalog_bridge.risk_via_engine (S.Risk.K_anonymity { k = 3 }) md
      in
      native = reasoned)

let prop_cycle_reaches_k_anonymity =
  QCheck2.Test.make ~name:"cycle always reaches k-anonymity or reports unresolved"
    ~count:15 gen_microdata
    (fun params ->
      let md = md_of params in
      let outcome = S.Cycle.run md in
      if outcome.S.Cycle.converged then begin
        let report =
          S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) outcome.S.Cycle.anonymized
        in
        S.Risk.risky report ~threshold:0.5 = []
      end
      else outcome.S.Cycle.unresolved <> [])

let prop_suppression_only_adds_nulls =
  QCheck2.Test.make ~name:"anonymization never alters constants except to nulls/parents"
    ~count:15 gen_microdata
    (fun params ->
      let md = md_of params in
      let outcome = S.Cycle.run md in
      let before = S.Microdata.relation md in
      let after = S.Microdata.relation outcome.S.Cycle.anonymized in
      let ok = ref true in
      R.Relation.iteri
        (fun i t ->
          let t' = R.Relation.get after i in
          Array.iteri
            (fun p v ->
              let v' = t'.(p) in
              if not (Value.equal v v') then
                if not (Value.is_null v') then ok := false)
            t)
        before;
      !ok)

let prop_risk_decreases_after_cycle =
  QCheck2.Test.make ~name:"global risk never grows through anonymization"
    ~count:15 gen_microdata
    (fun params ->
      let md = md_of params in
      let before = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
      let outcome = S.Cycle.run md in
      let after =
        S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) outcome.S.Cycle.anonymized
      in
      S.Risk.global_risk after <= S.Risk.global_risk before +. 1e-9)

let prop_control_closure_engine_native =
  QCheck2.Test.make ~name:"control closure: engine equals native on random graphs"
    ~count:15
    QCheck2.Gen.(
      list_size (int_range 1 10)
        (triple (int_bound 5) (int_bound 5) (float_range 0.05 0.95)))
    (fun edges ->
      let g =
        List.filter_map
          (fun (a, b, w) ->
            if a = b then None
            else
              Some
                (own ("c" ^ string_of_int a) ("c" ^ string_of_int b)
                   (Float.round (w *. 100.0) /. 100.0)))
          edges
      in
      S.Business.control_closure g = S.Business.control_closure_via_engine g)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sdc"
    [
      ( "microdata",
        [
          Alcotest.test_case "positions" `Quick test_microdata_positions;
          Alcotest.test_case "validation" `Quick test_microdata_validation;
          Alcotest.test_case "drop identifiers" `Quick test_drop_identifiers;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "register and facts" `Quick test_dictionary;
          Alcotest.test_case "categories_for" `Quick test_dictionary_categories_for;
        ] );
      ( "categorize",
        [
          Alcotest.test_case "I&G schema" `Quick test_categorize_ig_schema;
          Alcotest.test_case "feedback recursion" `Quick
            test_categorize_feedback_recursion;
          Alcotest.test_case "unresolved" `Quick test_categorize_unresolved;
          Alcotest.test_case "end to end" `Quick test_categorize_microdata_end_to_end;
          Alcotest.test_case "engine agrees" `Quick test_categorize_engine_agrees;
        ] );
      ( "risk",
        [
          Alcotest.test_case "figure 1 re-identification" `Quick
            test_figure1_reidentification_risks;
          Alcotest.test_case "figure 1 k-anonymity" `Quick test_figure1_k_anonymity;
          Alcotest.test_case "figure 5 k-anonymity" `Quick test_figure5_k_anonymity;
          Alcotest.test_case "individual risk bounds" `Quick
            test_individual_risk_ordering;
          Alcotest.test_case "SUDA tuple 20 MSUs" `Quick test_suda_figure1_tuple20;
          Alcotest.test_case "SUDA minimality" `Quick test_suda_minimality;
          Alcotest.test_case "SUDA thresholds" `Quick test_suda_risk_thresholds;
          Alcotest.test_case "SUDA DIS scores" `Quick test_suda_dis_scores;
          Alcotest.test_case "report rendering" `Quick test_risk_report_rendering;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "basics" `Quick test_suppress_basics;
          Alcotest.test_case "figure 5 effect" `Quick test_figure5_suppression_effect;
        ] );
      ( "recoding",
        [
          Alcotest.test_case "hierarchy basics" `Quick test_hierarchy_basics;
          Alcotest.test_case "figure 5 global recoding" `Quick
            test_global_recoding_figure5;
          Alcotest.test_case "full attribute recoding" `Quick test_recode_attr_fully;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "most risky qi" `Quick test_most_risky_qi_figure5;
          Alcotest.test_case "less significant first" `Quick
            test_tuple_order_less_significant;
          Alcotest.test_case "most risky first" `Quick test_tuple_order_most_risky;
        ] );
      ( "cycle",
        [
          Alcotest.test_case "figure 5 converges" `Quick test_cycle_figure5_converges;
          Alcotest.test_case "sector suppressed first" `Quick
            test_cycle_first_suppression_is_sector;
          Alcotest.test_case "k monotone" `Quick test_cycle_k_monotone;
          Alcotest.test_case "standard semantics proliferates" `Quick
            test_cycle_standard_semantics_leaves_unresolved;
          Alcotest.test_case "with recoding" `Quick test_cycle_with_recoding;
          Alcotest.test_case "re-identification measure" `Quick
            test_cycle_reidentification_measure;
          Alcotest.test_case "per-round limit" `Quick test_cycle_per_round_limit;
        ] );
      ( "audit",
        [
          Alcotest.test_case "one event per round" `Quick
            test_audit_one_event_per_round;
          Alcotest.test_case "post-state patched" `Quick
            test_audit_post_state_patched;
          Alcotest.test_case "jsonl round-trips" `Quick
            test_audit_jsonl_round_trips;
        ] );
      ( "info loss",
        [
          Alcotest.test_case "metrics" `Quick test_info_loss_metrics;
          Alcotest.test_case "generalization" `Quick test_generalization_loss;
        ] );
      ( "business",
        [
          Alcotest.test_case "direct and transitive" `Quick
            test_control_direct_and_transitive;
          Alcotest.test_case "joint control" `Quick test_control_joint;
          Alcotest.test_case "engine agrees" `Quick test_control_engine_agrees;
          Alcotest.test_case "clusters and propagation" `Quick
            test_clusters_and_propagation;
          Alcotest.test_case "enhanced cycle" `Quick
            test_enhanced_cycle_injects_more_nulls;
        ] );
      ( "explain",
        [
          Alcotest.test_case "action" `Quick test_explain_action;
          Alcotest.test_case "trace and summary" `Quick test_explain_trace_and_summary;
        ] );
      ( "reasoned path",
        [
          Alcotest.test_case "k-anonymity" `Quick test_engine_k_anonymity_agrees;
          Alcotest.test_case "re-identification" `Quick
            test_engine_reidentification_agrees;
          Alcotest.test_case "individual" `Quick test_engine_individual_agrees;
          Alcotest.test_case "SUDA" `Quick test_engine_suda_agrees;
          Alcotest.test_case "maybe-match k-anonymity" `Quick
            test_maybe_k_anonymity_program;
          Alcotest.test_case "risk explanation" `Quick test_engine_risk_explanation;
          Alcotest.test_case "enhanced risk (Algorithm 9)" `Quick
            test_enhanced_risk_via_engine;
          Alcotest.test_case "reasoned cycle" `Quick test_reasoned_cycle;
          Alcotest.test_case "Monte Carlo unsupported" `Quick
            test_monte_carlo_unsupported_on_engine;
        ] );
      ( "declarative programs",
        [
          Alcotest.test_case "suppression on engine" `Quick
            test_suppression_program_on_engine;
          Alcotest.test_case "suppression null guard" `Quick
            test_suppression_program_null_guard;
          Alcotest.test_case "recoding on engine" `Quick
            test_recoding_program_on_engine;
        ] );
      ( "cycle behaviours",
        [
          Alcotest.test_case "null-sharing ablation" `Quick test_share_nulls_ablation;
          Alcotest.test_case "individual measure" `Quick
            test_cycle_individual_measure_converges;
          Alcotest.test_case "SUDA measure" `Quick test_cycle_suda_measure_converges;
          Alcotest.test_case "max rounds" `Quick test_cycle_max_rounds_respected;
          Alcotest.test_case "custom measure" `Quick test_custom_measure;
        ] );
      ( "datafly baseline",
        [
          Alcotest.test_case "reaches k-anonymity" `Quick
            test_datafly_reaches_k_anonymity;
          Alcotest.test_case "figure 5" `Quick test_datafly_figure5;
          Alcotest.test_case "utility vs cycle" `Quick test_datafly_vs_cycle_utility;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "hierarchy cycle guard" `Quick test_hierarchy_chain_guard;
          Alcotest.test_case "hierarchy missing entries" `Quick
            test_hierarchy_missing_parent;
          Alcotest.test_case "dictionary errors" `Quick test_dictionary_errors;
          Alcotest.test_case "business empty/self graphs" `Quick
            test_business_empty_and_self;
          Alcotest.test_case "risk explanation wording" `Quick
            test_explain_tuple_risk_wording;
          Alcotest.test_case "SUDA DIS ordering" `Quick test_suda_dis_ordering;
        ] );
      ( "properties",
        qcheck
          [
            prop_engine_matches_native_k_anonymity;
            prop_cycle_reaches_k_anonymity;
            prop_suppression_only_adds_nulls;
            prop_risk_decreases_after_cycle;
            prop_control_closure_engine_native;
          ] );
    ]
