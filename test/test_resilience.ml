(* Failure-path tests for the resilience layer: the monotonic clock,
   cooperative budgets, the typed error taxonomy and its HTTP mapping,
   deterministic fault injection, the per-endpoint circuit breaker, the
   engine's structured interrupts, the pool's inclusive deadline, and an
   end-to-end degraded /v1/risk under an armed slow-engine fault. *)

module E = Vadasa_base.Error
module Budget = Vadasa_base.Budget
module Clock = Vadasa_base.Clock
module Json = Vadasa_base.Json
module Faultpoint = Vadasa_resilience.Faultpoint
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog
module Srv = Vadasa_server

(* --- clock ---------------------------------------------------------------- *)

let test_clock_monotone () =
  let a = Clock.now () in
  let b = Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool)
    "deadline in the future" true
    (Clock.deadline_in 10.0 > a)

let test_clock_expired_inclusive () =
  Alcotest.(check bool) "before" false (Clock.expired ~now:4.9 5.0);
  (* the boundary itself counts as expired — the pool-race fix *)
  Alcotest.(check bool) "exactly at" true (Clock.expired ~now:5.0 5.0);
  Alcotest.(check bool) "after" true (Clock.expired ~now:5.1 5.0)

(* --- budget --------------------------------------------------------------- *)

let test_budget_unconstrained () =
  let b = Budget.create () in
  Alcotest.(check bool) "no reason" true (Budget.check b ~facts:1_000_000 = None)

let test_budget_cancel () =
  let b = Budget.create () in
  Alcotest.(check bool) "not yet" true (Budget.check b ~facts:0 = None);
  Budget.cancel b;
  Alcotest.(check bool) "cancelled" true (Budget.cancelled b);
  Alcotest.(check bool)
    "reported" true
    (Budget.check b ~facts:0 = Some Budget.Cancelled)

let test_budget_deadline () =
  let b = Budget.create ~deadline:(Clock.now () -. 1.0) () in
  Alcotest.(check bool)
    "expired" true
    (Budget.check b ~facts:0 = Some Budget.Deadline);
  (* earlier of the two deadline forms wins *)
  let b2 = Budget.create ~deadline_in:3600.0 ~deadline:(Clock.now () -. 1.0) () in
  Alcotest.(check bool)
    "earlier wins" true
    (Budget.check b2 ~facts:0 = Some Budget.Deadline)

let test_budget_fact_ceiling () =
  let b = Budget.create ~max_facts:10 () in
  Alcotest.(check bool) "under" true (Budget.check b ~facts:9 = None);
  Alcotest.(check bool)
    "at the cap" true
    (Budget.check b ~facts:10 = Some Budget.Fact_ceiling);
  Alcotest.(check bool)
    "over" true
    (Budget.check b ~facts:11 = Some Budget.Fact_ceiling)

let test_budget_priority_and_codes () =
  let b = Budget.create ~deadline:(Clock.now () -. 1.0) ~max_facts:1 () in
  Budget.cancel b;
  (* all three exhausted: cancel outranks deadline outranks ceiling *)
  Alcotest.(check bool)
    "cancel first" true
    (Budget.check b ~facts:100 = Some Budget.Cancelled);
  Alcotest.(check string)
    "code" "budget.cancelled"
    (Budget.reason_code Budget.Cancelled);
  Alcotest.(check string)
    "code" "budget.deadline"
    (Budget.reason_code Budget.Deadline);
  Alcotest.(check string)
    "code" "budget.fact_ceiling"
    (Budget.reason_code Budget.Fact_ceiling)

(* --- error taxonomy ------------------------------------------------------- *)

let test_error_render () =
  let e =
    E.make ~code:"csv.ragged_row" E.Parse "bad row"
      ~context:[ ("line", "3"); ("column", "2") ]
  in
  Alcotest.(check string)
    "to_string" "csv.ragged_row: bad row (line=3, column=2)" (E.to_string e);
  let json = Json.to_string (E.to_json e) in
  Alcotest.(check bool)
    "json code" true
    (Astring_contains.contains json "\"code\":\"csv.ragged_row\"");
  Alcotest.(check bool)
    "json category" true
    (Astring_contains.contains json "\"category\":\"parse\"")

let test_error_context_precedence () =
  let e = E.make ~code:"x" E.Io "m" ~context:[ ("file", "inner.csv") ] in
  let e = E.add_context e [ ("file", "outer.csv"); ("op", "load") ] in
  (* the failure site's context wins; fresh keys are appended *)
  Alcotest.(check (option string))
    "existing kept" (Some "inner.csv") (E.context_value e "file");
  Alcotest.(check (option string)) "fresh added" (Some "load")
    (E.context_value e "op")

let test_error_category_round_trip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (E.category_to_string c) true
        (E.category_of_string (E.category_to_string c) = Some c))
    [ E.Parse; E.Wardedness; E.Resource; E.Io; E.Internal ]

let test_status_of_category () =
  let check cat status =
    Alcotest.(check int)
      (E.category_to_string cat)
      status
      (Srv.Codec.status_of_category cat)
  in
  check E.Parse 400;
  check E.Wardedness 422;
  check E.Resource 503;
  check E.Io 500;
  check E.Internal 500

let test_error_of_exn () =
  let code_of exn = (Srv.Codec.error_of_exn exn).E.code in
  Alcotest.(check string)
    "typed passthrough" "csv.ragged_row"
    (code_of (E.Error (E.make ~code:"csv.ragged_row" E.Parse "x")));
  Alcotest.(check string)
    "parser" "program.parse"
    (code_of (V.Parser.Error { line = 3; message = "nope" }));
  Alcotest.(check string)
    "stratify" "program.not_stratifiable"
    (code_of (V.Stratify.Not_stratifiable "loop"));
  Alcotest.(check string) "limit" "engine.limit" (code_of (V.Engine.Limit "x"));
  Alcotest.(check string)
    "unsupported" "measure.unsupported"
    (code_of (S.Vadalog_bridge.Unsupported "mc"));
  Alcotest.(check string)
    "unix" "io.unix"
    (code_of (Unix.Unix_error (Unix.ENOENT, "open", "f")));
  Alcotest.(check string)
    "fallback" "internal.exception" (code_of Not_found)

(* --- fault points --------------------------------------------------------- *)

let with_faults spec k =
  Faultpoint.reset ();
  (match Faultpoint.arm_spec spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm_spec %S: %s" spec (E.to_string e));
  Fun.protect ~finally:Faultpoint.reset k

let test_fault_disarmed_noop () =
  (* the disarmed path is a single atomic load: no raise, no counting *)
  Faultpoint.reset ();
  Faultpoint.hit "csv.read";
  Faultpoint.hit "csv.read";
  Alcotest.(check int) "not counted while disarmed" 0
    (Faultpoint.hit_count "csv.read")

let test_fault_fail_code () =
  with_faults "csv.read:fail" (fun () ->
      match Faultpoint.hit "csv.read" with
      | () -> Alcotest.fail "expected the injected failure"
      | exception E.Error e ->
        Alcotest.(check string) "code" "fault.csv.read" e.E.code;
        Alcotest.(check bool) "category" true (e.E.category = E.Io))

let test_fault_nth_hit () =
  with_faults "engine.iterate:fail@3" (fun () ->
      Faultpoint.hit "engine.iterate";
      Faultpoint.hit "engine.iterate";
      (match Faultpoint.hit "engine.iterate" with
      | () -> Alcotest.fail "third hit must fail"
      | exception E.Error _ -> ());
      (* only the Nth hit fires *)
      Faultpoint.hit "engine.iterate";
      Alcotest.(check int) "all hits counted" 4
        (Faultpoint.hit_count "engine.iterate"))

let test_fault_spec_errors () =
  Faultpoint.reset ();
  let rejects spec =
    match Faultpoint.arm_spec spec with
    | Ok () -> Alcotest.failf "spec %S must be rejected" spec
    | Error e -> Alcotest.(check string) spec "fault.bad_spec" e.E.code
  in
  rejects "unknown.point:fail";
  rejects "csv.read";
  rejects "csv.read:explode";
  rejects "csv.read:delay=abc";
  rejects "csv.read:fail@0";
  Alcotest.(check int) "nothing armed" 0 (List.length (Faultpoint.armed ()))

let test_fault_multi_clause_and_armed () =
  with_faults "csv.read:fail@2,http.write:delay=1ms" (fun () ->
      let names = List.map fst (Faultpoint.armed ()) in
      Alcotest.(check (list string))
        "both armed" [ "csv.read"; "http.write" ] (List.sort compare names);
      (* the delay clause sleeps but does not raise *)
      Faultpoint.hit "http.write")

(* --- circuit breaker ------------------------------------------------------ *)

let test_breaker_opens_at_threshold () =
  let b = Srv.Breaker.create ~threshold:3 ~cooldown:60.0 () in
  Srv.Breaker.failure b "k";
  Srv.Breaker.failure b "k";
  Alcotest.(check string) "still closed" "closed" (Srv.Breaker.state b "k");
  Alcotest.(check bool) "allows" true (Srv.Breaker.check b "k" = Srv.Breaker.Allow);
  Srv.Breaker.failure b "k";
  Alcotest.(check string) "open" "open" (Srv.Breaker.state b "k");
  (match Srv.Breaker.check b "k" with
  | Srv.Breaker.Allow -> Alcotest.fail "open circuit must reject"
  | Srv.Breaker.Rejected retry ->
    Alcotest.(check bool) "retry hint" true (retry > 0.0));
  (* a success on another key is independent *)
  Alcotest.(check string) "other key closed" "closed" (Srv.Breaker.state b "x")

let test_breaker_half_open_probe () =
  let b = Srv.Breaker.create ~threshold:1 ~cooldown:0.05 () in
  Srv.Breaker.failure b "k";
  Alcotest.(check string) "open" "open" (Srv.Breaker.state b "k");
  Unix.sleepf 0.06;
  (* first check after the cooldown claims the probe slot *)
  Alcotest.(check bool)
    "probe allowed" true
    (Srv.Breaker.check b "k" = Srv.Breaker.Allow);
  Alcotest.(check string) "half-open" "half_open" (Srv.Breaker.state b "k");
  (* a second caller is rejected while the probe is in flight *)
  (match Srv.Breaker.check b "k" with
  | Srv.Breaker.Allow -> Alcotest.fail "only one probe at a time"
  | Srv.Breaker.Rejected _ -> ());
  (* probe failure re-opens; probe success closes *)
  Srv.Breaker.failure b "k";
  Alcotest.(check string) "re-opened" "open" (Srv.Breaker.state b "k");
  Unix.sleepf 0.06;
  Alcotest.(check bool)
    "second probe" true
    (Srv.Breaker.check b "k" = Srv.Breaker.Allow);
  Srv.Breaker.success b "k";
  Alcotest.(check string) "closed again" "closed" (Srv.Breaker.state b "k");
  Alcotest.(check bool)
    "traffic flows" true
    (Srv.Breaker.check b "k" = Srv.Breaker.Allow)

(* --- engine interrupts ---------------------------------------------------- *)

let transitive_closure_engine () =
  let program =
    V.Parser.parse
      "@output(\"reach\").\n\
       edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(5,6).\n\
       reach(X,Y) :- edge(X,Y).\n\
       reach(X,Z) :- reach(X,Y), edge(Y,Z).\n"
  in
  V.Engine.create program

let test_engine_interrupt_consistency () =
  let engine = transitive_closure_engine () in
  let budget = Budget.create ~max_facts:3 () in
  match V.Engine.run ~budget engine with
  | () -> Alcotest.fail "expected an interrupt"
  | exception V.Engine.Interrupted i ->
    Alcotest.(check bool) "reason" true (i.V.Engine.reason = Budget.Fact_ceiling);
    (* the ceiling is polled at iteration boundaries, so the count can
       overshoot within one round but must match the engine's stats *)
    Alcotest.(check bool)
      "at or over the cap" true
      (i.V.Engine.facts_derived >= 3);
    Alcotest.(check int)
      "consistent with stats" i.V.Engine.facts_derived
      (V.Engine.stats engine).V.Engine.facts_derived;
    (* every derived fact is really in the store *)
    Alcotest.(check bool)
      "partial facts present" true
      (List.length (V.Engine.facts engine "reach") > 0)

let test_engine_cancel () =
  let engine = transitive_closure_engine () in
  let budget = Budget.create () in
  Budget.cancel budget;
  match V.Engine.run ~budget engine with
  | () -> Alcotest.fail "expected an interrupt"
  | exception V.Engine.Interrupted i ->
    Alcotest.(check bool) "reason" true (i.V.Engine.reason = Budget.Cancelled)

let test_engine_unbudgeted_unchanged () =
  let engine = transitive_closure_engine () in
  V.Engine.run engine;
  (* full closure of a 6-node chain: 5+4+3+2+1 pairs *)
  Alcotest.(check int) "saturated" 15 (List.length (V.Engine.facts engine "reach"))

let test_cycle_budget_interrupted () =
  let md = D.Suite.load ~scale:0.05 "R6A4U" in
  let exhausted = Budget.create ~deadline:(Clock.now () -. 1.0) () in
  let outcome = S.Cycle.run ~budget:exhausted md in
  Alcotest.(check bool)
    "outcome flags the interrupt" true
    (outcome.S.Cycle.interrupted = Some Budget.Deadline);
  let outcome = S.Cycle.run md in
  Alcotest.(check bool)
    "unbudgeted runs clean" true
    (outcome.S.Cycle.interrupted = None)

(* --- pool deadline (inclusive) -------------------------------------------- *)

let test_pool_exact_deadline_expires () =
  (* A job whose deadline is the submission instant: the worker dequeues
     at now >= deadline, and the inclusive comparison must expire it
     rather than run it with zero budget. *)
  let pool = Srv.Pool.create ~domains:1 ~queue_capacity:4 () in
  let ran = Atomic.make false in
  let expired = Atomic.make false in
  let ok =
    Srv.Pool.submit pool ~deadline:(Clock.now ())
      ~expired:(fun () -> Atomic.set expired true)
      (fun () -> Atomic.set ran true)
  in
  Alcotest.(check bool) "accepted" true ok;
  Srv.Pool.stop pool;
  Alcotest.(check bool) "not run" false (Atomic.get ran);
  Alcotest.(check bool) "expired" true (Atomic.get expired)

let test_pool_enqueue_fault_rejects () =
  with_faults "pool.enqueue:fail" (fun () ->
      let pool = Srv.Pool.create ~domains:1 ~queue_capacity:4 () in
      let ok = Srv.Pool.submit pool ~expired:ignore ignore in
      Alcotest.(check bool) "rejected like a full queue" false ok;
      let _, rejected, _, _, _ = Srv.Pool.counters pool in
      Alcotest.(check int) "counted" 1 rejected;
      Srv.Pool.stop pool)

(* --- end-to-end degraded risk --------------------------------------------- *)

let http_call ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Buffer.create (String.length body + 256) in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        (("host", "localhost") :: headers);
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n\r\n" (String.length body));
      Buffer.add_string buf body;
      let raw = Buffer.to_bytes buf in
      let off = ref 0 in
      while !off < Bytes.length raw do
        off := !off + Unix.write fd raw !off (Bytes.length raw - !off)
      done;
      let resp = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes resp chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents resp in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let body =
        match Astring_contains.find_sub raw "\r\n\r\n" with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> ""
      in
      (status, body))

let with_server ?(handlers = Srv.Handlers.create ()) k =
  let config =
    {
      Srv.Server.default_config with
      Srv.Server.port = 0;
      domains = 2;
      request_timeout = 60.0;
    }
  in
  let server = Srv.Server.create ~config handlers in
  Srv.Server.start server;
  Fun.protect
    ~finally:(fun () -> Srv.Server.shutdown server)
    (fun () -> k server (Srv.Server.port server))

let figure6_csv () =
  let md = D.Suite.load ~scale:0.05 "R6A4U" in
  (R.Csv.write_string (S.Microdata.relation md), S.Microdata.name md)

let test_e2e_degraded_risk () =
  let csv, name = figure6_csv () in
  with_faults "engine.iterate:delay=30ms" (fun () ->
      with_server (fun _server port ->
          let budget_ms = 50 in
          let target =
            Printf.sprintf "/v1/risk?name=%s&reasoned=true&budget-ms=%d" name
              budget_ms
          in
          let started = Unix.gettimeofday () in
          let status, body =
            http_call ~port ~meth:"POST" ~target
              ~headers:[ ("content-type", "text/csv") ]
              ~body:csv ()
          in
          let elapsed = Unix.gettimeofday () -. started in
          Alcotest.(check int) "degraded is still a 200" 200 status;
          Alcotest.(check bool)
            "flagged degraded" true
            (Astring_contains.contains body "\"degraded\": true");
          Alcotest.(check bool)
            "carries the interrupt reason" true
            (Astring_contains.contains body "budget.deadline");
          Alcotest.(check bool)
            "partial progress present" true
            (Astring_contains.contains body "\"facts_derived\"");
          (* the budget is honoured promptly; generous slack for CI — the
             iteration boundary adds at most one 30 ms delay past 50 ms *)
          Alcotest.(check bool)
            (Printf.sprintf "answered within ~2x budget (%.0f ms)"
               (elapsed *. 1000.0))
            true (elapsed < 2.0);
          (* the same request without a budget is not degraded *)
          Faultpoint.reset ();
          let target = "/v1/risk?name=" ^ name ^ "&reasoned=true" in
          let status, body =
            http_call ~port ~meth:"POST" ~target
              ~headers:[ ("content-type", "text/csv") ]
              ~body:csv ()
          in
          Alcotest.(check int) "clean 200" 200 status;
          Alcotest.(check bool)
            "not degraded" false
            (Astring_contains.contains body "\"degraded\"")))

let test_e2e_error_codes () =
  with_server (fun _server port ->
      let expect_code what target ?headers ?body code status' =
        let status, resp_body =
          http_call ~port ~meth:"POST" ~target ?headers
            ?body ()
        in
        Alcotest.(check int) (what ^ " status") status' status;
        Alcotest.(check bool)
          (what ^ " code " ^ code)
          true
          (Astring_contains.contains resp_body
             (Printf.sprintf "\"code\":\"%s\"" code)
          || Astring_contains.contains resp_body
               (Printf.sprintf "\"code\": \"%s\"" code))
      in
      let csv_hdr = [ ("content-type", "text/csv") ] in
      let csv, name = figure6_csv () in
      expect_code "empty body" "/v1/risk" ~headers:csv_hdr "request.empty_body"
        400;
      expect_code "ragged csv" "/v1/risk" ~headers:csv_hdr ~body:"a,b\n1\n"
        "csv.ragged_row" 400;
      expect_code "unknown measure"
        ("/v1/risk?name=" ^ name ^ "&measure=nope")
        ~headers:csv_hdr ~body:csv "measure.unknown" 422;
      expect_code "unknown method"
        ("/v1/anonymize?name=" ^ name ^ "&method=nope")
        ~headers:csv_hdr ~body:csv "method.unknown" 422;
      expect_code "bad json" "/v1/risk"
        ~headers:[ ("content-type", "application/json") ]
        ~body:"{\"nope\"" "json.invalid" 400;
      expect_code "bad param" "/v1/risk?budget-ms=zero" ~headers:csv_hdr
        ~body:"a,b\n1,2\n" "request.bad_param" 400;
      (* router-level errors carry codes too *)
      let status, body = http_call ~port ~meth:"POST" ~target:"/nope" () in
      Alcotest.(check int) "404" 404 status;
      Alcotest.(check bool)
        "404 code" true
        (Astring_contains.contains body "http.not_found");
      let status, body = http_call ~port ~meth:"PUT" ~target:"/v1/risk" () in
      Alcotest.(check int) "405" 405 status;
      Alcotest.(check bool)
        "405 code" true
        (Astring_contains.contains body "http.method_not_allowed"))

let test_e2e_fault_500_and_breaker () =
  (* A dispatch fault surfaces as a 500 with the fault's code; enough of
     them trip the endpoint's breaker, which answers 503 breaker.open
     with a Retry-After without running the handler. *)
  let handlers =
    Srv.Handlers.create ~breaker_threshold:2 ~breaker_cooldown:60.0 ()
  in
  with_faults "handler.dispatch:fail" (fun () ->
      with_server ~handlers (fun _server port ->
          let call () =
            http_call ~port ~meth:"GET" ~target:"/healthz" ()
          in
          let status, body = call () in
          Alcotest.(check int) "injected fault is a 500" 500 status;
          Alcotest.(check bool)
            "fault code" true
            (Astring_contains.contains body "fault.handler.dispatch");
          let _ = call () in
          (* threshold reached: the circuit is now open *)
          let status, body = call () in
          Alcotest.(check int) "breaker open" 503 status;
          Alcotest.(check bool)
            "breaker code" true
            (Astring_contains.contains body "breaker.open");
          Alcotest.(check string)
            "breaker visible" "open"
            (Srv.Breaker.state (Srv.Handlers.breaker handlers) "GET /healthz");
          (* other endpoints are unaffected *)
          Faultpoint.reset ();
          let status, _ = http_call ~port ~meth:"GET" ~target:"/metrics" () in
          Alcotest.(check int) "metrics unaffected" 200 status))

let test_e2e_server_max_facts_degrades () =
  (* The server-wide fact ceiling (serve --max-facts) degrades reasoned
     requests that bring no budget of their own. *)
  let csv, name = figure6_csv () in
  let handlers = Srv.Handlers.create ~default_max_facts:5 () in
  with_server ~handlers (fun _server port ->
      let status, body =
        http_call ~port ~meth:"POST"
          ~target:("/v1/reason?name=" ^ name)
          ~headers:[ ("content-type", "text/csv") ]
          ~body:csv ()
      in
      Alcotest.(check int) "200" 200 status;
      Alcotest.(check bool)
        "degraded" true
        (Astring_contains.contains body "\"degraded\": true");
      Alcotest.(check bool)
        "ceiling reason" true
        (Astring_contains.contains body "budget.fact_ceiling"))

(* --- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "resilience"
    [
      ( "clock",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "inclusive expiry" `Quick
            test_clock_expired_inclusive;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unconstrained" `Quick test_budget_unconstrained;
          Alcotest.test_case "cancel" `Quick test_budget_cancel;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "fact ceiling inclusive" `Quick
            test_budget_fact_ceiling;
          Alcotest.test_case "priority and codes" `Quick
            test_budget_priority_and_codes;
        ] );
      ( "error",
        [
          Alcotest.test_case "rendering" `Quick test_error_render;
          Alcotest.test_case "context precedence" `Quick
            test_error_context_precedence;
          Alcotest.test_case "category round trip" `Quick
            test_error_category_round_trip;
          Alcotest.test_case "HTTP status mapping" `Quick
            test_status_of_category;
          Alcotest.test_case "exception mapping" `Quick test_error_of_exn;
        ] );
      ( "faultpoint",
        [
          Alcotest.test_case "disarmed no-op counts" `Quick
            test_fault_disarmed_noop;
          Alcotest.test_case "fail carries code" `Quick test_fault_fail_code;
          Alcotest.test_case "fail@N fires once" `Quick test_fault_nth_hit;
          Alcotest.test_case "bad specs rejected" `Quick test_fault_spec_errors;
          Alcotest.test_case "multi-clause arming" `Quick
            test_fault_multi_clause_and_armed;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens at threshold" `Quick
            test_breaker_opens_at_threshold;
          Alcotest.test_case "half-open probe lifecycle" `Quick
            test_breaker_half_open_probe;
        ] );
      ( "engine",
        [
          Alcotest.test_case "interrupt counts consistent" `Quick
            test_engine_interrupt_consistency;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "unbudgeted unchanged" `Quick
            test_engine_unbudgeted_unchanged;
          Alcotest.test_case "cycle reports interrupt" `Quick
            test_cycle_budget_interrupted;
        ] );
      ( "pool",
        [
          Alcotest.test_case "exact deadline expires" `Quick
            test_pool_exact_deadline_expires;
          Alcotest.test_case "enqueue fault rejects" `Quick
            test_pool_enqueue_fault_rejects;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "degraded risk under budget" `Slow
            test_e2e_degraded_risk;
          Alcotest.test_case "error codes on the wire" `Slow
            test_e2e_error_codes;
          Alcotest.test_case "fault 500 and breaker" `Slow
            test_e2e_fault_500_and_breaker;
          Alcotest.test_case "server-wide fact ceiling" `Slow
            test_e2e_server_max_facts_degrades;
        ] );
    ]
