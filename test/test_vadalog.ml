(* Tests for the Vadalog reasoning engine: parser, stratification,
   wardedness, chase with existentials, monotonic aggregation, negation,
   provenance. *)

module Value = Vadasa_base.Value
module V = Vadasa_vadalog

let value = Alcotest.testable Value.pp Value.equal

let run_program src =
  let program = V.Parser.parse src in
  let engine = V.Engine.create program in
  V.Engine.run engine;
  engine

let sorted_facts engine pred =
  List.sort compare
    (List.map Array.to_list (V.Engine.facts engine pred))

let str s = Value.Str s
let int n = Value.Int n

(* --- parser ------------------------------------------------------------ *)

let test_parse_fact () =
  let p = V.Parser.parse {| edge(a, b). edge("x y", 3). w(1.5). b(true). |} in
  Alcotest.(check int) "fact count" 4 (List.length p.V.Program.facts);
  let _, args = List.nth p.V.Program.facts 1 in
  Alcotest.check value "string arg" (str "x y") args.(0);
  Alcotest.check value "int arg" (int 3) args.(1)

let test_parse_rule_roundtrip () =
  let r =
    V.Parser.parse_rule "path(X, Y) :- edge(X, Z), path(Z, Y), X != Y."
  in
  Alcotest.(check int) "body size" 3 (List.length r.V.Rule.body);
  Alcotest.(check (list string)) "head vars" [ "X"; "Y" ] (V.Rule.head_vars r)

let test_parse_agg () =
  let r = V.Parser.parse_rule "t(X, S) :- p(X, W), S = msum(W, <X>)." in
  match V.Rule.the_agg r with
  | Some { agg_op = V.Aggregate.Sum; agg_result = V.Rule.Bind "S"; _ } -> ()
  | _ -> Alcotest.fail "expected a bound msum aggregate"

let test_parse_agg_guard () =
  let r = V.Parser.parse_rule "t(X, Y) :- p(X, Y, W), msum(W, <X>) > 0.5." in
  match V.Rule.the_agg r with
  | Some { agg_result = V.Rule.Test (V.Expr.Gt, _); _ } -> ()
  | _ -> Alcotest.fail "expected an aggregate threshold test"

let test_parse_pair_and_coll () =
  let p = V.Parser.parse {| q(X) :- p(Y), X = (a, Y). s(Z) :- p(Y), Z = {1; 2; 3}. |} in
  Alcotest.(check int) "two rules" 2 (List.length p.V.Program.rules)

let test_parse_null_literal () =
  let p = V.Parser.parse "p(#4)." in
  let _, args = List.hd p.V.Program.facts in
  Alcotest.check value "null literal" (Value.Null 4) args.(0)

let test_parse_error () =
  Alcotest.check_raises "missing dot"
    (V.Parser.Error { line = 1; message = "expected '.' or ':-' after atom, found <eof>" })
    (fun () -> ignore (V.Parser.parse "p(a)"))

let test_parse_comments_and_annotations () =
  let p =
    V.Parser.parse
      {|
        % a comment
        @input("edge").
        @output("path").
        path(X, Y) :- edge(X, Y).  % trailing comment
      |}
  in
  Alcotest.(check (list string)) "inputs" [ "edge" ] p.V.Program.inputs;
  Alcotest.(check (list string)) "outputs" [ "path" ] p.V.Program.outputs

(* --- core evaluation --------------------------------------------------- *)

let test_transitive_closure () =
  let engine =
    run_program
      {|
        edge(a, b). edge(b, c). edge(c, d).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
      |}
  in
  Alcotest.(check int) "path count" 6 (List.length (V.Engine.facts engine "path"))

let test_negation () =
  let engine =
    run_program
      {|
        node(a). node(b). node(c).
        edge(a, b).
        source(X) :- node(X), not has_in(X).
        has_in(Y) :- edge(_, Y).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "sources" [ [ str "a" ]; [ str "c" ] ]
    (sorted_facts engine "source")

let test_guards_and_assign () =
  let engine =
    run_program
      {|
        p(1). p(2). p(3).
        q(X, Y) :- p(X), X > 1, Y = X * 10.
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "computed" [ [ int 2; int 20 ]; [ int 3; int 30 ] ]
    (sorted_facts engine "q")

let test_existential_nulls () =
  let engine =
    run_program
      {|
        person(alice). person(bob).
        parent(P, Z) :- person(P).
      |}
  in
  let facts = V.Engine.facts engine "parent" in
  Alcotest.(check int) "two facts" 2 (List.length facts);
  let nulls = List.map (fun f -> f.(1)) facts in
  List.iter
    (fun v -> Alcotest.(check bool) "is null" true (Value.is_null v))
    nulls;
  Alcotest.(check bool) "distinct nulls" true
    (not (Value.equal (List.nth nulls 0) (List.nth nulls 1)));
  Alcotest.(check int) "null count" 2 (V.Engine.nulls_created engine)

let test_existential_memoized () =
  (* The same frontier binding must reuse its null even across rule
     re-firing; recursion through the invented value must terminate. *)
  let engine =
    run_program
      {|
        p(a).
        e(X, Z) :- p(X).
        e2(X, Z) :- e(X, Z).
        e(X, Z) :- e2(X, Z).
      |}
  in
  Alcotest.(check int) "single null" 1 (V.Engine.nulls_created engine);
  Alcotest.(check int) "e facts" 1 (List.length (V.Engine.facts engine "e"))

let test_agg_sum () =
  let engine =
    run_program
      {|
        score(g1, x, 10). score(g1, y, 20). score(g2, z, 5).
        total(G, S) :- score(G, I, W), S = msum(W, <I>).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "sums"
    [ [ str "g1"; Value.Float 30.0 ]; [ str "g2"; Value.Float 5.0 ] ]
    (sorted_facts engine "total")

let test_agg_contributor_dedup () =
  (* The same contributor twice: the larger contribution supersedes. *)
  let engine =
    run_program
      {|
        score(g, x, 10). score(g, x, 25). score(g, y, 1).
        total(G, S) :- score(G, I, W), S = msum(W, <I>).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "dedup sum" [ [ str "g"; Value.Float 26.0 ] ]
    (sorted_facts engine "total")

let test_agg_count () =
  let engine =
    run_program
      {|
        val(t1, area, north). val(t1, sector, tex).
        val(t2, area, north). val(t2, sector, tex).
        val(t3, area, south). val(t3, sector, com).
        key(I, K) :- val(I, A, W), K = munion((A, W), <A>).
        freq(K, F) :- key(I, K), F = mcount(<I>).
      |}
  in
  let freqs = sorted_facts engine "freq" in
  Alcotest.(check int) "two groups" 2 (List.length freqs);
  let counts = List.sort compare (List.map (fun f -> List.nth f 1) freqs) in
  Alcotest.(check (list (module Value))) "counts" [ int 1; int 2 ] counts

let test_agg_recursion_company_control () =
  (* Paper Section 4.4: X controls Y directly (>50%) or via controlled
     companies jointly owning >50%. *)
  let engine =
    run_program
      {|
        own(a, b, 0.6).
        own(b, c, 0.3). own(a, c, 0.3).
        own(c, d, 0.9).
        rel(X, Y) :- own(X, Y, W), W > 0.5.
        rel(X, Y) :- rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5.
      |}
  in
  let rels = sorted_facts engine "rel" in
  (* a controls b (0.6); a controls c (via b 0.3 + directly... only owned
     through b: 0.3; a's direct 0.3 is not a rel contribution unless a is
     in rel with itself). The recursive rule sums ownership of c by
     companies Z controlled by a: only b (0.3) -> not controlled.
     c controls d (0.9) directly, and a does not reach d. *)
  Alcotest.(check (list (list (module Value))))
    "control pairs"
    [ [ str "a"; str "b" ]; [ str "c"; str "d" ] ]
    rels

let test_agg_recursion_joint_control () =
  (* Joint control: a owns 40% of c directly is not enough, but with
     rel(a,a) seeding, a's direct holdings plus controlled b's holdings
     jointly pass 50%. We model the seed rel(x,x) explicitly. *)
  let engine =
    run_program
      {|
        company(a). company(b). company(c).
        own(a, b, 0.8).
        own(a, c, 0.4). own(b, c, 0.2).
        rel(X, X) :- company(X).
        rel(X, Y) :- rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5.
      |}
  in
  let rels = sorted_facts engine "rel" in
  Alcotest.(check bool) "a controls c jointly" true
    (List.mem [ str "a"; str "c" ] rels);
  Alcotest.(check bool) "b alone does not control c" false
    (List.mem [ str "b"; str "c" ] rels)

let test_agg_prod () =
  let engine =
    run_program
      {|
        risk(cluster, t1, 0.5). risk(cluster, t2, 0.5).
        combined(G, R) :- risk(G, I, P), S = mprod(1 - P, <I>), R = 1 - S.
      |}
  in
  match V.Engine.facts engine "combined" with
  | [ [| _; Value.Float r |] ] ->
    Alcotest.(check (float 1e-9)) "1-(1-p)^2" 0.75 r
  | _ -> Alcotest.fail "expected a single combined fact"

let test_agg_min_max () =
  let engine =
    run_program
      {|
        m(g, a, 3). m(g, b, 7). m(g, c, 5).
        lo(G, X) :- m(G, I, W), X = mmin(W, <I>).
        hi(G, X) :- m(G, I, W), X = mmax(W, <I>).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "min" [ [ str "g"; int 3 ] ] (sorted_facts engine "lo");
  Alcotest.(check (list (list (module Value))))
    "max" [ [ str "g"; int 7 ] ] (sorted_facts engine "hi")

let test_builtin_collections () =
  let engine =
    run_program
      {|
        val(t1, area, north). val(t1, sector, tex).
        tuple(I, VS) :- val(I, A, W), VS = munion((A, W), <A>).
        narrowed(I, X) :- tuple(I, VS), X = get(VS, area).
        sz(I, N) :- tuple(I, VS), N = size(VS).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "get" [ [ str "t1"; str "north" ] ]
    (sorted_facts engine "narrowed");
  Alcotest.(check (list (list (module Value))))
    "size" [ [ str "t1"; int 2 ] ]
    (sorted_facts engine "sz")

let test_maybe_eq_builtin () =
  let engine =
    run_program
      {|
        t(a, #1). t(b, x).
        m(X, Y) :- t(X, V), t(Y, W), maybe_eq(V, W).
      |}
  in
  (* #1 maybe-matches x and itself; x matches itself and #1. *)
  Alcotest.(check int) "matches" 4 (List.length (V.Engine.facts engine "m"))

(* --- stratification and wardedness ------------------------------------- *)

let test_stratification_error () =
  let program =
    V.Parser.parse
      {|
        p(X) :- q(X), not p(X).
        q(a).
      |}
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (V.Engine.create program);
       false
     with V.Stratify.Not_stratifiable _ -> true)

let test_bound_agg_in_cycle_rejected () =
  let program =
    V.Parser.parse
      {|
        p(X, S) :- p(X, W), S = msum(W, <X>).
      |}
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (V.Engine.create program);
       false
     with V.Stratify.Not_stratifiable _ -> true)

let test_strata_ordering () =
  let program =
    V.Parser.parse
      {|
        r(X) :- base(X).
        s(X) :- r(X), not t(X).
        t(X) :- base(X), X > 2.
      |}
  in
  let strat = V.Stratify.compute program in
  let stratum p = Hashtbl.find strat.V.Stratify.stratum_of_pred p in
  Alcotest.(check bool) "t below s" true (stratum "t" < stratum "s")

let test_wardedness_warded () =
  let program =
    V.Parser.parse
      {|
        p(X, Z) :- q(X).
        r(X, Z) :- p(X, Z).
      |}
  in
  Alcotest.(check bool) "warded" true (V.Wardedness.is_warded program)

let test_wardedness_violation () =
  (* Two dangerous variables from different atoms with no common ward. *)
  let program =
    V.Parser.parse
      {|
        p(X, Z) :- q(X).
        s(Z1, Z2) :- p(X, Z1), p(Y, Z2), link(X, Y).
      |}
  in
  let report = V.Wardedness.analyze program in
  let not_warded =
    List.exists
      (fun (_, st) -> match st with V.Wardedness.Not_warded _ -> true | _ -> false)
      report.V.Wardedness.rule_status
  in
  Alcotest.(check bool) "violation found" true not_warded

let test_affected_positions () =
  let program = V.Parser.parse "p(X, Z) :- q(X). r(A, B) :- p(A, B)." in
  let report = V.Wardedness.analyze program in
  Alcotest.(check bool) "p[1] affected" true
    (List.mem ("p", 1) report.V.Wardedness.affected_positions);
  Alcotest.(check bool) "r[1] affected" true
    (List.mem ("r", 1) report.V.Wardedness.affected_positions);
  Alcotest.(check bool) "p[0] not affected" false
    (List.mem ("p", 0) report.V.Wardedness.affected_positions)

(* --- provenance --------------------------------------------------------- *)

let test_provenance () =
  let engine =
    run_program
      {|
        @label("base_case").
        path(X, Y) :- edge(X, Y).
        @label("step").
        path(X, Y) :- edge(X, Z), path(Z, Y).
        edge(a, b). edge(b, c).
      |}
  in
  match V.Engine.explain engine "path" [| str "a"; str "c" |] with
  | None -> Alcotest.fail "fact should exist"
  | Some node ->
    (match node.V.Provenance.how with
    | V.Provenance.By_rule { label; parents } ->
      Alcotest.(check string) "rule label" "step" label;
      Alcotest.(check int) "two parents" 2 (List.length parents)
    | _ -> Alcotest.fail "expected a rule derivation")

let test_provenance_input () =
  let engine = run_program "edge(a, b). path(X, Y) :- edge(X, Y)." in
  match V.Engine.explain engine "edge" [| str "a"; str "b" |] with
  | Some { how = V.Provenance.Input; _ } -> ()
  | _ -> Alcotest.fail "expected an input fact"

(* The text rendering [vadasa explain] prints, pinned against a golden
   file: a full tree, then the same fact under a [max_depth] that cuts
   the recursion — the cut node renders [unknown]. Regenerate with:
     EXPLAIN_GOLDEN_WRITE=test/golden_explain.txt \
       dune exec test/test_vadalog.exe -- test provenance *)
let test_explain_text_golden () =
  let engine =
    run_program
      {|
        @label("base_case").
        path(X, Y) :- edge(X, Y).
        @label("step").
        path(X, Y) :- edge(X, Z), path(Z, Y).
        edge(a, b). edge(b, c). edge(c, d).
      |}
  in
  let tree max_depth =
    match V.Engine.explain ?max_depth engine "path" [| str "a"; str "d" |] with
    | Some node -> V.Provenance.to_string node
    | None -> Alcotest.fail "path(a, d) should exist"
  in
  let rendered =
    "# full depth\n" ^ tree None ^ "# max_depth 2\n" ^ tree (Some 2)
  in
  (match Sys.getenv_opt "EXPLAIN_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out path in
    output_string oc rendered;
    close_out oc
  | None -> ());
  let golden =
    (* dune runtest runs in _build/default/test; dune exec from the root *)
    let path =
      if Sys.file_exists "golden_explain.txt" then "golden_explain.txt"
      else Filename.concat "test" "golden_explain.txt"
    in
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if not (String.equal rendered golden) then
    Alcotest.failf "explain rendering drifted from golden file:\n%s" rendered

(* --- property-based ----------------------------------------------------- *)

(* Reference transitive closure via repeated squaring over a bool matrix. *)
let reference_closure n edges =
  let m = Array.make_matrix n n false in
  List.iter (fun (a, b) -> m.(a).(b) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if m.(i).(k) && m.(k).(j) then m.(i).(j) <- true
      done
    done
  done;
  m

let prop_transitive_closure =
  QCheck2.Test.make ~name:"engine transitive closure matches matrix closure"
    ~count:30
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* edges = list_size (int_range 0 20) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      return (n, List.sort_uniq compare edges))
    (fun (n, edges) ->
      let program =
        V.Program.make
          ~facts:
            (List.map
               (fun (a, b) -> ("edge", [| Value.Int a; Value.Int b |]))
               edges)
          [
            V.Rule.make ~id:0
              ~head:[ V.Atom.of_terms "path" [ Var "X"; Var "Y" ] ]
              ~body:[ V.Rule.Pos (V.Atom.of_terms "edge" [ Var "X"; Var "Y" ]) ]
              ();
            V.Rule.make ~id:1
              ~head:[ V.Atom.of_terms "path" [ Var "X"; Var "Y" ] ]
              ~body:
                [
                  V.Rule.Pos (V.Atom.of_terms "edge" [ Var "X"; Var "Z" ]);
                  V.Rule.Pos (V.Atom.of_terms "path" [ Var "Z"; Var "Y" ]);
                ]
              ();
          ]
      in
      let engine = V.Engine.create program in
      V.Engine.run engine;
      let closure = reference_closure n edges in
      let expected = ref 0 in
      Array.iter (Array.iter (fun b -> if b then incr expected)) closure;
      List.length (V.Engine.facts engine "path") = !expected)

let prop_msum_matches_reference =
  QCheck2.Test.make ~name:"msum equals per-group sum of distinct contributors"
    ~count:30
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (triple (int_bound 3) (int_bound 5) (int_range 1 100)))
    (fun rows ->
      (* Deduplicate (group, contributor) keeping the max weight, like the
         monotonic semantics. *)
      let best = Hashtbl.create 16 in
      List.iter
        (fun (g, c, w) ->
          match Hashtbl.find_opt best (g, c) with
          | Some w' when w' >= w -> ()
          | _ -> Hashtbl.replace best (g, c) w)
        rows;
      let sums = Hashtbl.create 16 in
      Hashtbl.iter
        (fun (g, _) w ->
          let acc = try Hashtbl.find sums g with Not_found -> 0 in
          Hashtbl.replace sums g (acc + w))
        best;
      let facts =
        List.map
          (fun (g, c, w) ->
            ("score", [| Value.Int g; Value.Int c; Value.Int w |]))
          rows
      in
      let program =
        V.Program.union
          (V.Program.make ~facts [])
          (V.Parser.parse "total(G, S) :- score(G, I, W), S = msum(W, <I>).")
      in
      let engine = V.Engine.create program in
      V.Engine.run engine;
      List.for_all
        (fun fact ->
          match fact with
          | [| Value.Int g; total |] ->
            (match Value.as_float total with
            | Some s -> abs_float (s -. float_of_int (Hashtbl.find sums g)) < 1e-9
            | None -> false)
          | _ -> false)
        (V.Engine.facts engine "total"))

(* --- engine guards and edge cases ---------------------------------------- *)

let test_fact_limit_guard () =
  (* A non-warded rule whose chase diverges: every invented null seeds a
     new binding. The fact guard must trip rather than loop forever. *)
  let program = V.Parser.parse "f(a, b). f(X, Z) :- f(Y, X)." in
  let config = { V.Engine.default_config with V.Engine.max_facts = 200 } in
  let engine = V.Engine.create ~config program in
  Alcotest.(check bool) "limit trips with diagnostics" true
    (try
       V.Engine.run engine;
       false
     with V.Engine.Limit msg ->
       (* The message must locate the blow-up: stratum, iteration, and the
          predicates producing the facts. *)
       let contains needle =
         let n = String.length needle and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
         go 0
       in
       contains "stratum" && contains "iteration" && contains "top producers")

let test_run_idempotent () =
  let engine = run_program "edge(a, b). path(X, Y) :- edge(X, Y)." in
  let before = List.length (V.Engine.facts engine "path") in
  V.Engine.run engine;
  Alcotest.(check int) "no duplicates on re-run" before
    (List.length (V.Engine.facts engine "path"))

let test_incremental_facts () =
  let program = V.Parser.parse "path(X, Y) :- edge(X, Y)." in
  let engine = V.Engine.create program in
  V.Engine.add_fact engine "edge" [ str "a"; str "b" ];
  V.Engine.run engine;
  Alcotest.(check int) "first" 1 (List.length (V.Engine.facts engine "path"));
  V.Engine.add_fact engine "edge" [ str "b"; str "c" ];
  V.Engine.run engine;
  Alcotest.(check int) "after resume" 2 (List.length (V.Engine.facts engine "path"))

let test_first_null_label () =
  let program = V.Parser.parse "p(a). e(X, Z) :- p(X)." in
  let engine = V.Engine.create ~first_null_label:100 program in
  V.Engine.run engine;
  match V.Engine.facts engine "e" with
  | [ [| _; Value.Null n |] ] ->
    Alcotest.(check bool) "label offset" true (n >= 100)
  | _ -> Alcotest.fail "expected one fact with a null"

let test_multiple_heads () =
  let engine =
    run_program "p(a). q(X), r(X, X) :- p(X)."
  in
  Alcotest.(check int) "q derived" 1 (List.length (V.Engine.facts engine "q"));
  Alcotest.(check int) "r derived" 1 (List.length (V.Engine.facts engine "r"))

let test_multiple_heads_shared_existential () =
  (* The same invented null must appear in both heads. *)
  let engine = run_program "p(a). q(X, Z), r(Z) :- p(X)." in
  match V.Engine.facts engine "q", V.Engine.facts engine "r" with
  | [ [| _; z1 |] ], [ [| z2 |] ] ->
    Alcotest.check value "same null" z1 z2
  | _ -> Alcotest.fail "expected one fact each"

let test_constant_only_rule () =
  let engine = run_program "ok(1) :- base(x). base(x)." in
  Alcotest.(check int) "fires once" 1 (List.length (V.Engine.facts engine "ok"))

let test_guard_division_by_zero () =
  let program = V.Parser.parse "p(0). q(Y) :- p(X), Y = 1 / X." in
  let engine = V.Engine.create program in
  Alcotest.(check bool) "eval error surfaces" true
    (try
       V.Engine.run engine;
       false
     with V.Expr.Eval_error _ -> true)

let test_repeated_variable_in_atom () =
  let engine =
    run_program "e(a, a). e(a, b). loop(X) :- e(X, X)."
  in
  Alcotest.(check (list (list (module Value))))
    "only the reflexive pair" [ [ str "a" ] ]
    (sorted_facts engine "loop")

let test_arithmetic_and_builtins_in_rules () =
  let engine =
    run_program
      {|
        n(3). n(10).
        big(X, Y) :- n(X), X * 2 >= 10, Y = max(X, 7).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "computed" [ [ int 10; int 10 ] ]
    (sorted_facts engine "big")

let test_database_direct () =
  let db = V.Database.create () in
  Alcotest.(check bool) "new fact" true (V.Database.add db "p" [| str "a" |]);
  Alcotest.(check bool) "duplicate" false (V.Database.add db "p" [| str "a" |]);
  Alcotest.(check bool) "type-tagged keys" true
    (V.Database.add db "p" [| Value.Int 1 |]
    && V.Database.add db "p" [| Value.Str "1" |]);
  Alcotest.(check int) "size" 3 (V.Database.pred_size db "p");
  Alcotest.(check (list int)) "lookup" [ 0 ]
    (V.Database.lookup db "p" ~pos:0 (str "a"));
  Alcotest.(check int) "unknown pred" 0 (V.Database.pred_size db "zzz")

let test_aggregate_state_unit () =
  let open V.Aggregate in
  let s = create Sum in
  Alcotest.(check bool) "first" true (contribute s ~contributor:"a" (Value.Int 5));
  Alcotest.(check bool) "same lower ignored" false
    (contribute s ~contributor:"a" (Value.Int 3));
  Alcotest.(check bool) "same higher supersedes" true
    (contribute s ~contributor:"a" (Value.Int 9));
  Alcotest.(check bool) "other contributor" true
    (contribute s ~contributor:"b" (Value.Int 1));
  (match current s with
  | Value.Float x -> Alcotest.(check (float 1e-9)) "sum" 10.0 x
  | v -> Alcotest.fail ("unexpected " ^ Value.to_string v));
  Alcotest.(check int) "contributors" 2 (contributors s)

let test_aggregate_union_null_supersedes () =
  let open V.Aggregate in
  let s = create Union in
  ignore
    (contribute s ~contributor:"a"
       (Value.pair (Value.Str "sector") (Value.Str "Textiles")));
  ignore
    (contribute s ~contributor:"a"
       (Value.pair (Value.Str "sector") (Value.Null 1)));
  match current s with
  | Value.Coll [ Value.Pair (_, v) ] ->
    Alcotest.(check bool) "anonymized pair wins" true (Value.is_null v)
  | v -> Alcotest.fail ("unexpected " ^ Value.to_string v)

let test_expr_evaluation () =
  let env : V.Expr.env = Hashtbl.create 4 in
  Hashtbl.replace env "X" (Value.Int 6);
  Hashtbl.replace env "Y" (Value.Float 1.5);
  let eval s =
    (* Parse an expression by wrapping it into an assignment literal. *)
    let r = V.Parser.parse_rule ("t(Z) :- p(X, Y), Z = " ^ s ^ ".") in
    match
      List.find_map
        (function V.Rule.Assign ("Z", e) -> Some e | _ -> None)
        r.V.Rule.body
    with
    | Some e -> V.Expr.eval env e
    | None -> Alcotest.fail "no assignment parsed"
  in
  Alcotest.check value "int arith stays int" (Value.Int 8) (eval "X + 2");
  Alcotest.check value "mixed promotes" (Value.Float 7.5) (eval "X + Y");
  Alcotest.check value "division real" (Value.Float 3.0) (eval "X / 2");
  Alcotest.check value "modulo" (Value.Int 0) (eval "X mod 2");
  Alcotest.check value "precedence" (Value.Int 13) (eval "1 + X * 2");
  Alcotest.check value "unary minus" (Value.Int (-6)) (eval "-X");
  Alcotest.check value "numeric equality across types" (Value.Bool true)
    (eval "(X = 6.0)");
  Alcotest.check value "and short-circuits" (Value.Bool false)
    (eval "(false and (1 / 0 > 0))");
  Alcotest.check value "or short-circuits" (Value.Bool true)
    (eval "(true or (1 / 0 > 0))");
  Alcotest.check value "comparison chain via ite" (Value.Str "big")
    (eval "ite(X >= 5, big, small)");
  (* Unbound variables are rejected statically by rule validation... *)
  Alcotest.(check bool) "validator rejects unbound variables" true
    (try
       ignore (V.Parser.parse_rule "t(Z) :- p(X), Z = W + 1.");
       false
     with V.Parser.Error _ -> true);
  (* ... and dynamically by the evaluator. *)
  Alcotest.(check bool) "evaluator rejects unbound variables" true
    (try
       ignore (V.Expr.eval env (V.Expr.Var "unbound"));
       false
     with V.Expr.Eval_error _ -> true);
  Alcotest.(check bool) "modulo by zero raises" true
    (try
       ignore (eval "X mod 0");
       false
     with V.Expr.Eval_error _ -> true)

let test_builtins_catalogue () =
  let open Value in
  let b = V.Builtins.apply in
  let p = pair (Str "k") (Int 1) in
  Alcotest.check value "pair" p (b "pair" [ Str "k"; Int 1 ]);
  Alcotest.check value "fst" (Str "k") (b "fst" [ p ]);
  Alcotest.check value "snd" (Int 1) (b "snd" [ p ]);
  let c = b "coll" [ Int 2; Int 1; Int 2 ] in
  Alcotest.check value "coll canonical" (coll [ Int 1; Int 2 ]) c;
  Alcotest.check value "union" (coll [ Int 1; Int 2; Int 3 ])
    (b "union" [ c; coll [ Int 3 ] ]);
  Alcotest.check value "member yes" (Bool true) (b "member" [ c; Int 1 ]);
  Alcotest.check value "member no" (Bool false) (b "member" [ c; Int 9 ]);
  Alcotest.check value "size" (Int 2) (b "size" [ c ]);
  Alcotest.check value "subset yes" (Bool true)
    (b "subset" [ coll [ Int 1 ]; c ]);
  Alcotest.check value "subset no" (Bool false)
    (b "subset" [ coll [ Int 9 ]; c ]);
  let kv = coll [ pair (Str "a") (Int 1); pair (Str "b") (Int 2) ] in
  Alcotest.check value "get" (Int 1) (b "get" [ kv; Str "a" ]);
  Alcotest.check value "keys" (coll [ Str "a"; Str "b" ]) (b "keys" [ kv ]);
  Alcotest.check value "filter" (coll [ pair (Str "a") (Int 1) ])
    (b "filter" [ kv; coll [ Str "a" ] ]);
  Alcotest.check value "remove_key" (coll [ pair (Str "b") (Int 2) ])
    (b "remove_key" [ kv; Str "a" ]);
  Alcotest.check value "is_null yes" (Bool true) (b "is_null" [ Null 1 ]);
  Alcotest.check value "is_null no" (Bool false) (b "is_null" [ Str "x" ]);
  Alcotest.check value "maybe_eq" (Bool true) (b "maybe_eq" [ Null 1; Str "x" ]);
  Alcotest.check value "ite then" (Str "y") (b "ite" [ Bool true; Str "y"; Str "n" ]);
  Alcotest.check value "ite else" (Str "n") (b "ite" [ Bool false; Str "y"; Str "n" ]);
  Alcotest.check value "min" (Int 1) (b "min" [ Int 1; Int 2 ]);
  Alcotest.check value "max" (Int 2) (b "max" [ Int 1; Int 2 ]);
  Alcotest.check value "abs" (Int 3) (b "abs" [ Int (-3) ]);
  Alcotest.check value "concat" (Str "ab") (b "concat" [ Str "a"; Str "b" ]);
  (match b "pow" [ Int 2; Int 10 ] with
  | Float x -> Alcotest.(check (float 1e-9)) "pow" 1024.0 x
  | v -> Alcotest.fail (to_string v));
  (match b "similarity" [ Str "sector"; Str "sector_code" ] with
  | Float x -> Alcotest.(check bool) "similarity high" true (x >= 0.55)
  | v -> Alcotest.fail (to_string v))

let test_builtins_errors () =
  let check_err name args =
    Alcotest.(check bool) (name ^ " raises") true
      (try
         ignore (V.Builtins.apply name args);
         false
       with V.Builtins.Error _ -> true)
  in
  check_err "get" [ Value.coll []; Value.Str "missing" ];
  check_err "fst" [ Value.Int 1 ];
  check_err "size" [ Value.Int 1 ];
  check_err "ite" [ Value.Int 1; Value.Int 2; Value.Int 3 ];
  check_err "pair" [ Value.Int 1 ];
  check_err "no_such_function" [];
  Alcotest.(check bool) "is_builtin" true (V.Builtins.is_builtin "msum" = false);
  Alcotest.(check bool) "names listed" true
    (List.mem "maybe_eq" (V.Builtins.names ()))

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (V.Lexer.tokenize "p(?)");
       false
     with V.Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (V.Lexer.tokenize "p(\"abc")
       |> fun () -> false
     with V.Lexer.Error _ -> true)

let test_parser_not_function_vs_negation () =
  (* not(expr) is a guard; not atom is negation. *)
  let r1 = V.Parser.parse_rule "q(X) :- p(X), not(is_null(X))." in
  Alcotest.(check bool) "guard" true
    (List.exists (function V.Rule.Guard _ -> true | _ -> false) r1.V.Rule.body);
  let r2 = V.Parser.parse_rule "q(X) :- p(X), not r(X)." in
  Alcotest.(check bool) "negation" true
    (List.exists (function V.Rule.Neg _ -> true | _ -> false) r2.V.Rule.body)

let test_program_union_and_pp () =
  let a = V.Parser.parse "p(1). q(X) :- p(X)." in
  let b = V.Parser.parse "r(X) :- q(X)." in
  let u = V.Program.union a b in
  Alcotest.(check int) "rules" 2 (List.length u.V.Program.rules);
  let ids = List.map (fun r -> r.V.Rule.id) u.V.Program.rules in
  Alcotest.(check int) "distinct ids" 2 (List.length (List.sort_uniq compare ids));
  (* The printed program re-parses to the same number of rules/facts. *)
  let printed = Format.asprintf "%a" V.Program.pp u in
  let reparsed = V.Parser.parse printed in
  Alcotest.(check int) "roundtrip rules" 2 (List.length reparsed.V.Program.rules);
  Alcotest.(check int) "roundtrip facts" 1 (List.length reparsed.V.Program.facts)

let test_anonymous_variables_distinct () =
  (* Two underscores must not join with each other. *)
  let engine =
    run_program "e(a, b). e(c, d). both(1) :- e(_, _), e(_, _)."
  in
  Alcotest.(check int) "derived" 1 (List.length (V.Engine.facts engine "both"))

let test_stratified_agg_then_negation () =
  let engine =
    run_program
      {|
        score(g1, a, 5). score(g1, b, 7). score(g2, c, 1).
        total(G, S) :- score(G, I, W), S = msum(W, <I>).
        low(G) :- total(G, S), S < 5.
        high(G) :- total(G, S), not low(G).
      |}
  in
  Alcotest.(check (list (list (module Value))))
    "high groups" [ [ str "g1" ] ]
    (sorted_facts engine "high")

let prop_negation_complement =
  QCheck2.Test.make ~name:"negation partitions the domain" ~count:50
    QCheck2.Gen.(list_size (int_range 0 15) (int_bound 9))
    (fun marked ->
      let facts =
        List.init 10 (fun i -> ("node", [| Value.Int i |]))
        @ List.map (fun i -> ("marked", [| Value.Int i |])) (List.sort_uniq compare marked)
      in
      let program =
        V.Program.union
          (V.Program.make ~facts [])
          (V.Parser.parse "unmarked(X) :- node(X), not marked(X).")
      in
      let engine = V.Engine.create program in
      V.Engine.run engine;
      let marked_count = List.length (List.sort_uniq compare marked) in
      List.length (V.Engine.facts engine "unmarked") = 10 - marked_count)

(* --- the chase profiler ------------------------------------------------- *)

let test_profile_invariants () =
  let engine =
    run_program
      {|
        parent(a, b). parent(b, c). parent(c, d).
        own(a, x, 0.4). own(b, x, 0.3). own(a, y, 0.9).
        @label("base").
        ancestor(X, Y) :- parent(X, Y).
        @label("step").
        ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
        @label("invent").
        boss(X, Z) :- parent(X, _).
        @label("total").
        stake(C, S) :- own(P, C, W), S = msum(W, <P>).
        @output("ancestor").
      |}
  in
  let report = V.Engine.profile_report engine in
  let stats = V.Engine.stats engine in
  let rows = report.V.Profile.rows in
  Alcotest.(check int) "one row per rule" 4 (List.length rows);
  List.iter
    (fun r ->
      let l = r.V.Profile.row_label in
      Alcotest.(check bool) (l ^ ": evaluated") true (r.V.Profile.row_evals > 0);
      Alcotest.(check bool) (l ^ ": time >= 0") true (r.V.Profile.row_time >= 0.0);
      Alcotest.(check bool) (l ^ ": scanned >= matched") true
        (r.V.Profile.row_scanned >= r.V.Profile.row_matched);
      Alcotest.(check int) (l ^ ": emitted = derived + duplicates")
        r.V.Profile.row_emitted
        (r.V.Profile.row_derived + r.V.Profile.row_duplicates))
    rows;
  (* Rows are ranked by self time, slowest first. *)
  let times = List.map (fun r -> r.V.Profile.row_time) rows in
  Alcotest.(check (list (float 1e-9))) "ranked by self time"
    (List.sort (fun a b -> compare b a) times)
    times;
  (* Row totals must agree with the engine's own chase statistics. *)
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Alcotest.(check int) "derived totals agree" stats.V.Engine.facts_derived
    (sum (fun r -> r.V.Profile.row_derived));
  Alcotest.(check int) "duplicate totals agree"
    stats.V.Engine.duplicates_suppressed
    (sum (fun r -> r.V.Profile.row_duplicates));
  Alcotest.(check int) "null totals agree" stats.V.Engine.nulls_created
    (sum (fun r -> r.V.Profile.row_nulls));
  Alcotest.(check int) "group totals agree" stats.V.Engine.agg_groups_created
    (sum (fun r -> r.V.Profile.row_groups));
  let row label =
    match List.find_opt (fun r -> r.V.Profile.row_label = label) rows with
    | Some r -> r
    | None -> Alcotest.failf "no profile row for rule %S" label
  in
  Alcotest.(check bool) "existential rule invented nulls" true
    ((row "invent").V.Profile.row_nulls > 0);
  Alcotest.(check int) "aggregate rule tracked groups" 2
    (row "total").V.Profile.row_groups;
  (* The recursive stratum is visible with its iteration count. *)
  Alcotest.(check bool) "strata recorded" true
    (List.exists
       (fun s -> s.V.Profile.st_iterations > 1)
       report.V.Profile.strata);
  (* Rendered outputs carry the rows. *)
  let text = V.Profile.to_text report in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " in text") true (contains l))
    [ "base"; "step"; "invent"; "total" ];
  match V.Profile.to_json report with
  | Vadasa_telemetry.Telemetry.Json.Obj fields ->
    Alcotest.(check bool) "json has rules" true (List.mem_assoc "rules" fields)
  | _ -> Alcotest.fail "profile json is not an object"

let test_profile_time_attribution () =
  (* A join-heavy program: rule evaluation must dominate the engine.run
     wall time, so per-rule self times account for (nearly) all of it —
     the acceptance bound is 10%, we assert a conservative 70% to stay
     robust on loaded CI machines. *)
  let facts =
    List.init 120 (fun i -> Printf.sprintf "p(%d)." i)
    |> String.concat " "
  in
  let engine =
    run_program (facts ^ " q(X, Y) :- p(X), p(Y). @output(\"q\").")
  in
  let report = V.Engine.profile_report engine in
  Alcotest.(check bool) "run time measured" true
    (report.V.Profile.run_time > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "rule self time (%.4fs) covers >= 70%% of run (%.4fs)"
       report.V.Profile.rule_time report.V.Profile.run_time)
    true
    (report.V.Profile.rule_time >= 0.7 *. report.V.Profile.run_time);
  Alcotest.(check (float 1e-9)) "other = run - rule"
    (report.V.Profile.run_time -. report.V.Profile.rule_time)
    report.V.Profile.other_time

let () =
  let qcheck tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "vadalog"
    [
      ( "parser",
        [
          Alcotest.test_case "facts" `Quick test_parse_fact;
          Alcotest.test_case "rule" `Quick test_parse_rule_roundtrip;
          Alcotest.test_case "aggregate bind" `Quick test_parse_agg;
          Alcotest.test_case "aggregate guard" `Quick test_parse_agg_guard;
          Alcotest.test_case "pairs and collections" `Quick test_parse_pair_and_coll;
          Alcotest.test_case "null literal" `Quick test_parse_null_literal;
          Alcotest.test_case "error reporting" `Quick test_parse_error;
          Alcotest.test_case "comments and annotations" `Quick
            test_parse_comments_and_annotations;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "stratified negation" `Quick test_negation;
          Alcotest.test_case "guards and assignment" `Quick test_guards_and_assign;
          Alcotest.test_case "existential nulls" `Quick test_existential_nulls;
          Alcotest.test_case "skolem memoization" `Quick test_existential_memoized;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "msum" `Quick test_agg_sum;
          Alcotest.test_case "contributor dedup" `Quick test_agg_contributor_dedup;
          Alcotest.test_case "mcount with munion keys" `Quick test_agg_count;
          Alcotest.test_case "company control" `Quick
            test_agg_recursion_company_control;
          Alcotest.test_case "joint control" `Quick test_agg_recursion_joint_control;
          Alcotest.test_case "mprod cluster risk" `Quick test_agg_prod;
          Alcotest.test_case "mmin/mmax" `Quick test_agg_min_max;
          Alcotest.test_case "collection builtins" `Quick test_builtin_collections;
          Alcotest.test_case "maybe_eq" `Quick test_maybe_eq_builtin;
        ] );
      ( "stratification",
        [
          Alcotest.test_case "negation cycle rejected" `Quick
            test_stratification_error;
          Alcotest.test_case "bound aggregate cycle rejected" `Quick
            test_bound_agg_in_cycle_rejected;
          Alcotest.test_case "strata ordering" `Quick test_strata_ordering;
        ] );
      ( "wardedness",
        [
          Alcotest.test_case "warded program" `Quick test_wardedness_warded;
          Alcotest.test_case "violation detected" `Quick test_wardedness_violation;
          Alcotest.test_case "affected positions" `Quick test_affected_positions;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "derived fact" `Quick test_provenance;
          Alcotest.test_case "input fact" `Quick test_provenance_input;
          Alcotest.test_case "text rendering golden" `Quick
            test_explain_text_golden;
        ] );
      ( "engine edge cases",
        [
          Alcotest.test_case "fact limit guard" `Quick test_fact_limit_guard;
          Alcotest.test_case "idempotent run" `Quick test_run_idempotent;
          Alcotest.test_case "incremental facts" `Quick test_incremental_facts;
          Alcotest.test_case "null label seeding" `Quick test_first_null_label;
          Alcotest.test_case "multiple heads" `Quick test_multiple_heads;
          Alcotest.test_case "shared existential across heads" `Quick
            test_multiple_heads_shared_existential;
          Alcotest.test_case "constant-only rule" `Quick test_constant_only_rule;
          Alcotest.test_case "division by zero" `Quick test_guard_division_by_zero;
          Alcotest.test_case "repeated variable" `Quick
            test_repeated_variable_in_atom;
          Alcotest.test_case "arithmetic and builtins" `Quick
            test_arithmetic_and_builtins_in_rules;
          Alcotest.test_case "anonymous variables" `Quick
            test_anonymous_variables_distinct;
          Alcotest.test_case "aggregation before negation" `Quick
            test_stratified_agg_then_negation;
        ] );
      ( "internals",
        [
          Alcotest.test_case "database" `Quick test_database_direct;
          Alcotest.test_case "aggregate state" `Quick test_aggregate_state_unit;
          Alcotest.test_case "munion null supersedes" `Quick
            test_aggregate_union_null_supersedes;
          Alcotest.test_case "expression evaluation" `Quick test_expr_evaluation;
          Alcotest.test_case "builtins catalogue" `Quick test_builtins_catalogue;
          Alcotest.test_case "builtins errors" `Quick test_builtins_errors;
          Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
          Alcotest.test_case "not() vs not atom" `Quick
            test_parser_not_function_vs_negation;
          Alcotest.test_case "program union and printing" `Quick
            test_program_union_and_pp;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "counter invariants" `Quick
            test_profile_invariants;
          Alcotest.test_case "time attribution" `Quick
            test_profile_time_attribution;
        ] );
      ( "properties",
        qcheck
          [
            prop_transitive_closure;
            prop_msum_matches_reference;
            prop_negation_complement;
          ] );
    ]
